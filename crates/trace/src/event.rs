//! The fixed-size binary trace record.
//!
//! Every observable decision in the runtime is reduced to one 32-byte
//! [`TraceEvent`]: a virtual timestamp, the emitting lane, a per-ring
//! sequence number, an interned label (lock or granule context), a
//! [`EventKind`] discriminant and three small operand bytes plus one
//! 64-bit payload. Fixed size keeps ring writes a single slot store and
//! makes the on-wire encoding (and therefore the determinism digest)
//! trivial to specify: all fields little-endian in declaration order.

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A critical section completed; `a` = mode (0 HTM, 1 SWOpt, 2 Lock),
    /// `b` = reason ([`reason`] codes), payload = execution attempts.
    ModeDecision = 1,
    /// A hardware transaction aborted; `a` = abort class
    /// (0 conflict, 1 capacity, 2 explicit, 3 spurious), `b` = explicit
    /// user code (0 otherwise), `c` = retry hint, payload = attempt index.
    HtmAbort = 2,
    /// The adaptive policy moved between phases; payload packs the stage
    /// words as `from << 32 | to`.
    PhaseTransition = 3,
    /// The abort-storm breaker changed state; `a` = from, `b` = to
    /// (0 Closed, 1 Open, 2 HalfOpen), `c` = backoff level,
    /// payload = cooldown ns (0 where not applicable).
    BreakerEdge = 4,
    /// A stall was observed; `a` = 1 SWOpt reader parked / 2 lock
    /// acquisition timed out, payload = bumps or waited ns.
    StallWarn = 5,
    /// A previously stalled acquisition eventually succeeded;
    /// payload = total ns spent waiting, `a` = expiries survived.
    StallClear = 6,
    /// A lock was poisoned by a panicking critical section.
    LockPoison = 7,
    /// A WAL record reached the durable medium; `a` = op code,
    /// payload = record sequence number.
    WalFsync = 8,
    /// Recovery replayed the log; payload = records applied.
    RecoveryApplied = 9,
    /// Recovery truncated a torn/corrupt log tail; payload = records
    /// dropped, `a` = records ignored (compensated), clamped to 255.
    RecoveryTruncated = 10,
}

impl EventKind {
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::ModeDecision,
            2 => EventKind::HtmAbort,
            3 => EventKind::PhaseTransition,
            4 => EventKind::BreakerEdge,
            5 => EventKind::StallWarn,
            6 => EventKind::StallClear,
            7 => EventKind::LockPoison,
            8 => EventKind::WalFsync,
            9 => EventKind::RecoveryApplied,
            10 => EventKind::RecoveryTruncated,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            EventKind::ModeDecision => "mode_decision",
            EventKind::HtmAbort => "htm_abort",
            EventKind::PhaseTransition => "phase_transition",
            EventKind::BreakerEdge => "breaker_edge",
            EventKind::StallWarn => "stall_warn",
            EventKind::StallClear => "stall_clear",
            EventKind::LockPoison => "lock_poison",
            EventKind::WalFsync => "wal_fsync",
            EventKind::RecoveryApplied => "recovery_applied",
            EventKind::RecoveryTruncated => "recovery_truncated",
        }
    }
}

/// Reason codes carried in `b` by [`EventKind::ModeDecision`] events.
pub mod reason {
    /// The hardware transaction committed.
    pub const HTM_COMMIT: u8 = 0;
    /// The optimistic software path validated and committed.
    pub const SWOPT_COMMIT: u8 = 1;
    /// Lock mode was the plan from the start (no elision budget).
    pub const LOCK_PLANNED: u8 = 2;
    /// Both elision budgets were exhausted; fell back to the lock.
    pub const LOCK_FALLBACK: u8 = 3;
    /// The lock was already held reentrantly by this thread.
    pub const LOCK_REENTRANT: u8 = 4;
}

/// One fixed-size binary trace record (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// Virtual (or real monotonic) nanosecond timestamp at emit time.
    pub vtime: u64,
    /// Kind-specific operand (durations, packed stage words, …).
    pub payload: u64,
    /// Per-ring write index; with `lane` it makes the merge order total.
    pub seq: u32,
    /// Simulator lane (or ring registration index outside a simulation).
    pub lane: u16,
    /// Interned label id (see [`crate::label_id`]); 0 = unlabelled.
    pub label: u16,
    /// [`EventKind`] discriminant (0 only in never-written ring slots).
    pub kind: u8,
    pub a: u8,
    pub b: u8,
    pub c: u8,
}

impl TraceEvent {
    fn new(kind: EventKind, label: u16, a: u8, b: u8, c: u8, payload: u64) -> TraceEvent {
        TraceEvent {
            vtime: 0,
            payload,
            seq: 0,
            lane: 0,
            label,
            kind: kind as u8,
            a,
            b,
            c,
        }
    }

    /// A critical section completed in `mode` for `reason`, after
    /// `attempts` executions of the body. `c` carries the current scenario
    /// tag (see [`crate::scenario`]); 0 when no scenario is set.
    pub fn mode_decision(label: u16, mode: u8, why: u8, attempts: u64) -> TraceEvent {
        TraceEvent::new(
            EventKind::ModeDecision,
            label,
            mode,
            why,
            crate::scenario::scenario_tag(),
            attempts,
        )
    }

    /// A hardware transaction aborted with the given classification.
    pub fn htm_abort(
        label: u16,
        class: u8,
        detail: u8,
        may_retry: bool,
        attempt: u64,
    ) -> TraceEvent {
        TraceEvent::new(
            EventKind::HtmAbort,
            label,
            class,
            detail,
            may_retry as u8,
            attempt,
        )
    }

    /// The adaptive stage machine moved `from_word` → `to_word` (packed
    /// stage words, both < 2³²).
    pub fn phase_transition(label: u16, from_word: u64, to_word: u64) -> TraceEvent {
        TraceEvent::new(
            EventKind::PhaseTransition,
            label,
            0,
            0,
            0,
            (from_word << 32) | (to_word & 0xFFFF_FFFF),
        )
    }

    /// The abort-storm breaker crossed a state edge.
    pub fn breaker_edge(label: u16, from: u8, to: u8, level: u8, cooldown_ns: u64) -> TraceEvent {
        TraceEvent::new(EventKind::BreakerEdge, label, from, to, level, cooldown_ns)
    }

    /// A stall was detected (`stall_kind`: 1 SWOpt parked, 2 lock timeout).
    pub fn stall_warn(label: u16, stall_kind: u8, magnitude: u64) -> TraceEvent {
        TraceEvent::new(EventKind::StallWarn, label, stall_kind, 0, 0, magnitude)
    }

    /// A stalled acquisition recovered after `expiries` deadline misses.
    pub fn stall_clear(label: u16, expiries: u8, waited_ns: u64) -> TraceEvent {
        TraceEvent::new(EventKind::StallClear, label, expiries, 0, 0, waited_ns)
    }

    /// A critical section panicked and poisoned its lock.
    pub fn lock_poison(label: u16) -> TraceEvent {
        TraceEvent::new(EventKind::LockPoison, label, 0, 0, 0, 0)
    }

    /// A write-ahead-log record became durable (`op` = WAL op code).
    pub fn wal_fsync(label: u16, op: u8, seq: u64) -> TraceEvent {
        TraceEvent::new(EventKind::WalFsync, label, op, 0, 0, seq)
    }

    /// Recovery replayed `applied` records from the log.
    pub fn recovery_applied(label: u16, applied: u64) -> TraceEvent {
        TraceEvent::new(EventKind::RecoveryApplied, label, 0, 0, 0, applied)
    }

    /// Recovery dropped `truncated` torn/corrupt tail records (`ignored`
    /// additionally read-but-skipped, clamped to 255).
    pub fn recovery_truncated(label: u16, truncated: u64, ignored: u64) -> TraceEvent {
        TraceEvent::new(
            EventKind::RecoveryTruncated,
            label,
            ignored.min(255) as u8,
            0,
            0,
            truncated,
        )
    }

    /// The event's kind, if the discriminant is valid (it always is for
    /// events produced by the constructors above).
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_u8(self.kind)
    }

    /// Canonical binary encoding: every field little-endian in declaration
    /// order. This is the digest surface of the determinism contract —
    /// extend it only by appending.
    pub fn encode(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&self.vtime.to_le_bytes());
        out[8..16].copy_from_slice(&self.payload.to_le_bytes());
        out[16..20].copy_from_slice(&self.seq.to_le_bytes());
        out[20..22].copy_from_slice(&self.lane.to_le_bytes());
        out[22..24].copy_from_slice(&self.label.to_le_bytes());
        out[24] = self.kind;
        out[25] = self.a;
        out[26] = self.b;
        out[27] = self.c;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip() {
        for k in [
            EventKind::ModeDecision,
            EventKind::HtmAbort,
            EventKind::PhaseTransition,
            EventKind::BreakerEdge,
            EventKind::StallWarn,
            EventKind::StallClear,
            EventKind::LockPoison,
            EventKind::WalFsync,
            EventKind::RecoveryApplied,
            EventKind::RecoveryTruncated,
        ] {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn constructors_tag_kinds() {
        assert_eq!(
            TraceEvent::mode_decision(3, 1, reason::SWOPT_COMMIT, 2).kind(),
            Some(EventKind::ModeDecision)
        );
        let ab = TraceEvent::htm_abort(1, 0, 0xFF, true, 4);
        assert_eq!(ab.kind(), Some(EventKind::HtmAbort));
        assert_eq!(ab.c, 1);
        let ph = TraceEvent::phase_transition(2, 5, 9);
        assert_eq!(ph.payload, (5 << 32) | 9);
        assert_eq!(TraceEvent::lock_poison(7).label, 7);
        let ws = TraceEvent::wal_fsync(4, 1, 77);
        assert_eq!(ws.kind(), Some(EventKind::WalFsync));
        assert_eq!((ws.a, ws.payload), (1, 77));
        assert_eq!(
            TraceEvent::recovery_applied(4, 12).kind(),
            Some(EventKind::RecoveryApplied)
        );
        let rt = TraceEvent::recovery_truncated(4, 2, 300);
        assert_eq!(rt.kind(), Some(EventKind::RecoveryTruncated));
        assert_eq!((rt.payload, rt.a), (2, 255));
    }

    #[test]
    fn encoding_is_stable() {
        let mut ev = TraceEvent::breaker_edge(0x0102, 0, 1, 2, 0x55);
        ev.vtime = 0x1122_3344;
        ev.seq = 7;
        ev.lane = 3;
        let bytes = ev.encode();
        assert_eq!(&bytes[0..4], &[0x44, 0x33, 0x22, 0x11]);
        assert_eq!(bytes[8], 0x55);
        assert_eq!(bytes[16], 7);
        assert_eq!(bytes[20], 3);
        assert_eq!(&bytes[22..24], &[0x02, 0x01]);
        assert_eq!(bytes[24], EventKind::BreakerEdge as u8);
        assert_eq!(&bytes[25..28], &[0, 1, 2]);
    }
}
