//! Lock-free bounded single-producer ring of [`TraceEvent`] records.
//!
//! Each tracing thread owns exactly one ring: the emitting thread is the
//! only producer, and the drain side runs after producers quiesce (or, at
//! worst, concurrently — the head/tail protocol below stays safe either
//! way). The ring **drops the newest** record when full rather than
//! overwriting history: an unread slot is never touched again, which is
//! what makes torn reads impossible by construction, and the drop counter
//! keeps the accounting honest (`writes == drained + drops`, the ale-check
//! oracle from `tests/prop.rs`).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::TraceEvent;

/// Bounded SPSC ring. See the module docs for the producer/consumer roles.
pub struct Ring {
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// `capacity - 1`; the capacity is always a power of two.
    mask: usize,
    /// Next write index (monotone, producer-published with Release).
    head: AtomicU64,
    /// Next read index (monotone, consumer-published with Release).
    tail: AtomicU64,
    /// Records rejected because the ring was full.
    drops: AtomicU64,
    /// Lane hint used when no simulator lane id is available.
    lane_hint: u16,
}

// SAFETY: the UnsafeCell slots are written only by the single producer and
// only at indices the consumer has released (head - tail < capacity), and
// read only at indices the producer has published (index < Acquire-loaded
// head). All cross-thread visibility goes through the head/tail
// Release/Acquire pairs.
unsafe impl Sync for Ring {}
// SAFETY: TraceEvent is plain data; ownership of the ring may move freely.
unsafe impl Send for Ring {}

impl Ring {
    /// A ring holding at least `capacity` records (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(capacity: usize, lane_hint: u16) -> Ring {
        let cap = capacity.max(8).next_power_of_two();
        let slots: Vec<UnsafeCell<TraceEvent>> = (0..cap)
            .map(|_| UnsafeCell::new(TraceEvent::default()))
            .collect();
        Ring {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            lane_hint,
        }
    }

    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    pub fn lane_hint(&self) -> u16 {
        self.lane_hint
    }

    /// Producer side: append `ev` (stamping its `seq` with the write
    /// index), or count a drop if the ring is full. Must only be called
    /// from the ring's owning thread.
    pub fn push(&self, mut ev: TraceEvent) -> bool {
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire);
        if h.wrapping_sub(t) > self.mask as u64 {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        ev.seq = h as u32;
        // SAFETY: single producer (caller contract), and the bound check
        // above guarantees the consumer has released this slot; the record
        // becomes visible only through the Release store of `head` below.
        unsafe {
            *self.slots[(h as usize) & self.mask].get() = ev;
        }
        self.head.store(h.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: move every published record into `out`, in write
    /// order, and advance the read index past them.
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        let mut i = t;
        while i != h {
            // SAFETY: slots in [tail, head) were fully written before the
            // producer's Release store of `head`, which our Acquire load
            // synchronises with; the producer will not reuse them until we
            // publish the new tail below.
            out.push(unsafe { *self.slots[(i as usize) & self.mask].get() });
            i = i.wrapping_add(1);
        }
        self.tail.store(h, Ordering::Release);
    }

    /// Records ever accepted (drained or still buffered).
    pub fn writes(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records rejected because the ring was full (cumulative).
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Published records not yet drained.
    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Acquire);
        let h = self.head.load(Ordering::Acquire);
        h.wrapping_sub(t) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(payload: u64) -> TraceEvent {
        TraceEvent::mode_decision(1, 0, 0, payload)
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Ring::with_capacity(0, 0).capacity(), 8);
        assert_eq!(Ring::with_capacity(9, 0).capacity(), 16);
        assert_eq!(Ring::with_capacity(64, 3).lane_hint(), 3);
    }

    #[test]
    fn push_drain_preserves_order_and_seq() {
        let r = Ring::with_capacity(8, 0);
        for i in 0..5 {
            assert!(r.push(ev(i)));
        }
        assert_eq!(r.len(), 5);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.payload, i as u64);
            assert_eq!(e.seq, i as u32);
        }
        assert!(r.is_empty());
        assert_eq!(r.drops(), 0);
    }

    #[test]
    fn full_ring_drops_newest() {
        let r = Ring::with_capacity(8, 0);
        for i in 0..12 {
            r.push(ev(i));
        }
        assert_eq!(r.drops(), 4);
        assert_eq!(r.writes(), 8);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        // The *oldest* 8 survive; the newest 4 were dropped.
        assert_eq!(
            out.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5, 6, 7]
        );
        // After draining there is room again.
        assert!(r.push(ev(99)));
        let mut out2 = Vec::new();
        r.drain_into(&mut out2);
        assert_eq!(out2[0].payload, 99);
        assert_eq!(out2[0].seq, 8, "seq continues across wraparound");
    }

    #[test]
    fn wraparound_reuses_slots_without_corruption() {
        let r = Ring::with_capacity(4, 0);
        let mut drained = Vec::new();
        for round in 0u64..50 {
            assert!(r.push(ev(round)));
            if round % 3 == 0 {
                r.drain_into(&mut drained);
            }
        }
        r.drain_into(&mut drained);
        assert_eq!(drained.len(), 50);
        for (i, e) in drained.iter().enumerate() {
            assert_eq!(e.payload, i as u64);
        }
    }
}
