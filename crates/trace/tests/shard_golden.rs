//! Golden-snapshot test for the per-shard mode-mix exporter: the
//! `ale_shard_mode_total` family is a stable surface dashboards scrape,
//! so any change must show up as a reviewed fixture diff.
//!
//! Regenerate the fixture after an intentional schema change with:
//! `BLESS=1 cargo test -p ale-trace --test shard_golden`

use ale_trace::{label_id, shard_mode_mix, TraceEvent};

/// A deterministic synthetic stream: three shards with distinct mode
/// mixes (the hot shard mostly in Lock mode, the cold ones eliding), one
/// non-shard lock the exporter must ignore, plus a non-ModeDecision
/// event. Runs in its own test binary, so first-use label interning is
/// deterministic.
fn demo_stream() -> Vec<TraceEvent> {
    let s0 = label_id("shard00");
    let s3 = label_id("shard03");
    let s17 = label_id("shard17");
    let other = label_id("kyoto-rw");
    let mut evs = Vec::new();
    let mut push_mode = |label: u16, mode: u8, n: usize| {
        for _ in 0..n {
            evs.push(TraceEvent::mode_decision(label, mode, 0, 1));
        }
    };
    // Cold shard 0: mostly elided.
    push_mode(s0, 0, 6);
    push_mode(s0, 1, 2);
    // Hot shard 3: collapsed to Lock.
    push_mode(s3, 2, 9);
    push_mode(s3, 1, 1);
    // Two-digit parse: shard 17.
    push_mode(s17, 0, 4);
    // Non-shard lock and non-ModeDecision event: both ignored.
    push_mode(other, 2, 5);
    evs.push(TraceEvent::lock_poison(s0));
    evs
}

#[test]
fn shard_mix_matches_golden_fixture() {
    let got = shard_mode_mix(&demo_stream());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/shard_mix.prom");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &got).expect("write blessed fixture");
        return;
    }
    let expected = std::fs::read_to_string(path).expect(
        "fixture missing — regenerate with BLESS=1 cargo test -p ale-trace --test shard_golden",
    );
    assert_eq!(
        got, expected,
        "shard mode-mix exporter drifted from the golden fixture; if the \
         change is intentional, regenerate with BLESS=1 and review the diff"
    );
}

#[test]
fn shard_mix_breaks_modes_down_per_shard() {
    let text = shard_mode_mix(&demo_stream());
    assert!(text.contains("# TYPE ale_shard_mode_total counter\n"));
    assert!(text.contains("ale_shard_mode_total{shard=\"0\",mode=\"htm\"} 6\n"));
    assert!(text.contains("ale_shard_mode_total{shard=\"0\",mode=\"swopt\"} 2\n"));
    assert!(text.contains("ale_shard_mode_total{shard=\"3\",mode=\"lock\"} 9\n"));
    assert!(text.contains("ale_shard_mode_total{shard=\"3\",mode=\"swopt\"} 1\n"));
    assert!(text.contains("ale_shard_mode_total{shard=\"17\",mode=\"htm\"} 4\n"));
    // The non-shard lock and the lock_poison event contribute nothing.
    assert!(!text.contains("kyoto"));
    assert_eq!(text.matches("ale_shard_mode_total{").count(), 5);
}
