//! Property tests for the trace ring and merge (vendored proptest stub,
//! same idiom as `crates/sync/tests/prop.rs`).
//!
//! The three contracts the tentpole leans on:
//! * wraparound never tears a record — every drained record is internally
//!   consistent and appears in write order;
//! * the drop counter is exact accounting — attempts = drained + buffered
//!   + dropped, even with writers running concurrently with the drainer;
//! * the merge is a stable `(vtime, lane, seq)` sort.

use std::sync::Arc;

use ale_trace::{export, Ring, TraceEvent};
use proptest::prelude::*;

/// A record whose fields are all derived from one counter, so any torn
/// mix of two records is detectable.
fn stamped(n: u64) -> TraceEvent {
    let mut e = TraceEvent::mode_decision(
        (n % 7) as u16,
        (n % 3) as u8,
        (n % 5) as u8,
        n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    e.vtime = n;
    e
}

fn is_consistent(e: &TraceEvent) -> bool {
    let n = e.vtime;
    e.label == (n % 7) as u16
        && e.a == (n % 3) as u8
        && e.b == (n % 5) as u8
        && e.payload == n.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wraparound (pushes far beyond capacity, drains at arbitrary points)
    /// never yields a torn or out-of-order record.
    #[test]
    fn wraparound_never_tears(
        cap in 1usize..40,
        ops in proptest::collection::vec(any::<bool>(), 1..120),
    ) {
        let r = Ring::with_capacity(cap, 0);
        let mut counter = 0u64;
        let mut drained = Vec::new();
        for push in ops {
            if push {
                r.push(stamped(counter));
                counter += 1;
            } else {
                r.drain_into(&mut drained);
            }
        }
        r.drain_into(&mut drained);
        for e in &drained {
            prop_assert!(is_consistent(e), "torn record: {e:?}");
        }
        // Drop-newest preserves write order: the surviving subsequence of
        // counters is strictly increasing, and seq matches acceptance order.
        for w in drained.windows(2) {
            prop_assert!(w[0].vtime < w[1].vtime);
            prop_assert!(w[0].seq < w[1].seq);
        }
        prop_assert_eq!(drained.len() as u64 + r.drops(), counter);
    }

    /// attempts = drained + buffered + dropped, with one producer thread
    /// per ring running concurrently with a draining consumer.
    #[test]
    fn drops_balance_writes_minus_reads(
        writers in 1usize..4,
        per_writer in 1u64..400,
        cap in 1usize..32,
    ) {
        let rings: Vec<Arc<Ring>> =
            (0..writers).map(|i| Arc::new(Ring::with_capacity(cap, i as u16))).collect();
        let mut drained: Vec<Vec<TraceEvent>> = vec![Vec::new(); writers];
        std::thread::scope(|s| {
            for ring in &rings {
                let ring = Arc::clone(ring);
                s.spawn(move || {
                    for n in 0..per_writer {
                        ring.push(stamped(n));
                    }
                });
            }
            // Drain concurrently while the writers run.
            for _ in 0..50 {
                for (i, ring) in rings.iter().enumerate() {
                    ring.drain_into(&mut drained[i]);
                }
                std::thread::yield_now();
            }
        });
        for (i, ring) in rings.iter().enumerate() {
            ring.drain_into(&mut drained[i]);
            prop_assert!(ring.is_empty());
            prop_assert_eq!(
                drained[i].len() as u64 + ring.drops(),
                per_writer,
                "ring {i}: drained {} + drops {} != attempts {}",
                drained[i].len(),
                ring.drops(),
                per_writer
            );
            for e in &drained[i] {
                prop_assert!(is_consistent(e), "torn record under concurrency: {e:?}");
            }
        }
    }

    /// `merge` sorts by `(vtime, lane, seq)`, keeps ties stable, and is a
    /// permutation of its input.
    #[test]
    fn merge_is_a_stable_vtime_sort(
        raw in proptest::collection::vec(
            (0u64..16, 0u16..4, 0u32..8, any::<u64>()),
            0..80,
        ),
    ) {
        let mut events: Vec<TraceEvent> = raw
            .iter()
            .map(|&(vt, lane, seq, payload)| {
                let mut e = TraceEvent::mode_decision(0, 0, 0, payload);
                e.vtime = vt;
                e.lane = lane;
                e.seq = seq;
                e
            })
            .collect();
        let mut reference = events.clone();
        export::merge(&mut events);
        for w in events.windows(2) {
            prop_assert!(
                (w[0].vtime, w[0].lane, w[0].seq) <= (w[1].vtime, w[1].lane, w[1].seq)
            );
        }
        // Stability: equal keys keep their input order. Rust's sort_by_key
        // is stable, so sorting the reference the same way must reproduce
        // the exact payload sequence.
        reference.sort_by_key(|e| (e.vtime, e.lane, e.seq));
        let a: Vec<u64> = events.iter().map(|e| e.payload).collect();
        let b: Vec<u64> = reference.iter().map(|e| e.payload).collect();
        prop_assert_eq!(a, b);
        // Permutation check: multiset of encodings is preserved.
        let mut x: Vec<[u8; 32]> = events.iter().map(|e| e.encode()).collect();
        let mut y: Vec<[u8; 32]> = raw
            .iter()
            .map(|&(vt, lane, seq, payload)| {
                let mut e = TraceEvent::mode_decision(0, 0, 0, payload);
                e.vtime = vt;
                e.lane = lane;
                e.seq = seq;
                e.encode()
            })
            .collect();
        x.sort_unstable();
        y.sort_unstable();
        prop_assert_eq!(x, y);
    }
}
