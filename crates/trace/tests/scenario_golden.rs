//! Golden-snapshot test for the per-scenario mode-mix exporter: the
//! `ale_scenario_mode_total` family is a stable surface dashboards scrape,
//! so any change must show up as a reviewed fixture diff.
//!
//! Regenerate the fixture after an intentional schema change with:
//! `BLESS=1 cargo test -p ale-trace --test scenario_golden`

use ale_trace::{
    clear_scenario, reason, scenario_mode_mix, scenario_tag, set_scenario, TraceEvent,
};

/// A deterministic synthetic stream: two tagged scenarios with distinct
/// mode mixes, one untagged stretch, plus a non-ModeDecision event the
/// exporter must ignore. Runs in its own test binary, so first-use tag
/// assignment is deterministic.
fn demo_stream() -> Vec<TraceEvent> {
    let mut evs = Vec::new();
    let mut push_mode = |mode: u8, why: u8, n: usize| {
        for _ in 0..n {
            evs.push(TraceEvent::mode_decision(1, mode, why, 1));
        }
    };
    set_scenario("ttl");
    push_mode(0, reason::HTM_COMMIT, 5);
    push_mode(1, reason::SWOPT_COMMIT, 3);
    push_mode(2, reason::LOCK_FALLBACK, 1);
    set_scenario("registry");
    push_mode(1, reason::SWOPT_COMMIT, 7);
    push_mode(2, reason::LOCK_PLANNED, 2);
    clear_scenario();
    push_mode(0, reason::HTM_COMMIT, 4);
    evs.push(TraceEvent::lock_poison(1)); // must not count
    evs
}

#[test]
fn scenario_mix_matches_golden_fixture() {
    let _g = ale_trace::test_serial();
    let got = scenario_mode_mix(&demo_stream());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/scenario_mix.prom"
    );
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &got).expect("write blessed fixture");
        return;
    }
    let expected = std::fs::read_to_string(path).expect(
        "fixture missing — regenerate with BLESS=1 cargo test -p ale-trace --test scenario_golden",
    );
    assert_eq!(
        got, expected,
        "scenario mode-mix exporter drifted from the golden fixture; if the \
         change is intentional, regenerate with BLESS=1 and review the diff"
    );
}

#[test]
fn scenario_mix_breaks_modes_down_per_scenario() {
    let _g = ale_trace::test_serial();
    let text = scenario_mode_mix(&demo_stream());
    assert!(text.contains("# TYPE ale_scenario_mode_total counter\n"));
    assert!(text.contains("ale_scenario_mode_total{scenario=\"untagged\",mode=\"htm\"} 4\n"));
    assert!(text.contains("ale_scenario_mode_total{scenario=\"ttl\",mode=\"htm\"} 5\n"));
    assert!(text.contains("ale_scenario_mode_total{scenario=\"ttl\",mode=\"swopt\"} 3\n"));
    assert!(text.contains("ale_scenario_mode_total{scenario=\"ttl\",mode=\"lock\"} 1\n"));
    assert!(text.contains("ale_scenario_mode_total{scenario=\"registry\",mode=\"swopt\"} 7\n"));
    assert!(text.contains("ale_scenario_mode_total{scenario=\"registry\",mode=\"lock\"} 2\n"));
    // The lock_poison event contributes nothing.
    assert_eq!(text.matches("ale_scenario_mode_total{").count(), 6);
}

#[test]
fn clearing_restores_the_untagged_state() {
    let _g = ale_trace::test_serial();
    set_scenario("scenario-golden-extra");
    assert_ne!(scenario_tag(), 0);
    clear_scenario();
    assert_eq!(scenario_tag(), 0);
}
