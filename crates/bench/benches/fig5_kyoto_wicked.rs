//! Figure 5 bench target: Kyoto `wicked` cells (nested RW-lock + slot-lock
//! elision). See `figures -- fig5` for the full grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ale_bench::{run_kyoto, Variant};
use ale_kyoto::WickedConfig;
use ale_vtime::Platform;

fn fig5_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_kyoto_wicked");
    let cfg = WickedConfig {
        key_space: 8 * 1024,
        count_permille: 0,
        ..Default::default()
    };
    for variant in [
        Variant::Uninstrumented,
        Variant::StaticAll(5, 10),
        Variant::AdaptiveAll,
    ] {
        for threads in [1usize, 8] {
            g.bench_with_input(
                BenchmarkId::new(variant.name(), threads),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        black_box(
                            run_kyoto(Platform::haswell(), variant, t, &cfg, 300, 200, 4).mops,
                        )
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig5_cells
}
criterion_main!(benches);
