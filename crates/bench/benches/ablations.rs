//! Ablation bench targets (A1–A4): the design-choice experiments from
//! DESIGN.md, reduced to representative cells. Full grids:
//! `figures -- ablate-elide ablate-group ablate-buckets ablate-x`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ale_bench::{harness::run_hashmap_mods, HashMapWorkload, Mods, Variant};
use ale_vtime::Platform;

fn a1_elide(c: &mut Criterion) {
    let mut g = c.benchmark_group("A1_version_bump_elision");
    let w = HashMapWorkload::mutate_heavy(8 * 1024).with_buckets(512);
    for (label, mods) in [
        ("elide", Mods::default()),
        (
            "always-bump",
            Mods {
                force_bump: true,
                ..Default::default()
            },
        ),
    ] {
        g.bench_with_input(BenchmarkId::new(label, 8), &8usize, |b, &t| {
            b.iter(|| {
                black_box(
                    run_hashmap_mods(
                        Platform::haswell(),
                        Variant::StaticHl(5),
                        mods,
                        t,
                        &w,
                        400,
                        0,
                        5,
                    )
                    .mops,
                )
            });
        });
    }
    g.finish();
}

fn a2_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("A2_grouping");
    let w = HashMapWorkload::mutate_heavy(4 * 1024).with_buckets(64);
    for (label, mods) in [
        (
            "grouping",
            Mods {
                static_grouping: true,
                ..Default::default()
            },
        ),
        (
            "no-grouping",
            Mods {
                grouping_off: true,
                ..Default::default()
            },
        ),
    ] {
        g.bench_with_input(BenchmarkId::new(label, 32), &32usize, |b, &t| {
            b.iter(|| {
                black_box(
                    run_hashmap_mods(
                        Platform::t2(),
                        Variant::StaticSl(24),
                        mods,
                        t,
                        &w,
                        150,
                        0,
                        6,
                    )
                    .mops,
                )
            });
        });
    }
    g.finish();
}

fn a3_bucket_versions(c: &mut Criterion) {
    let mut g = c.benchmark_group("A3_version_stripes");
    for stripes in [1usize, 64] {
        let w = HashMapWorkload::mutate_heavy(4 * 1024).with_version_stripes(stripes);
        g.bench_with_input(BenchmarkId::new("stripes", stripes), &stripes, |b, _| {
            b.iter(|| {
                black_box(
                    run_hashmap_mods(
                        Platform::t2(),
                        Variant::StaticSl(24),
                        Mods::default(),
                        32,
                        &w,
                        150,
                        0,
                        7,
                    )
                    .mops,
                )
            });
        });
    }
    g.finish();
}

fn a4_x_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("A4_x_selection");
    let w = HashMapWorkload::mutate_heavy(16 * 1024);
    for x in [1u32, 5, 10] {
        g.bench_with_input(BenchmarkId::new("static_x", x), &x, |b, &x| {
            b.iter(|| {
                black_box(
                    run_hashmap_mods(
                        Platform::rock(),
                        Variant::StaticHl(x),
                        Mods::default(),
                        8,
                        &w,
                        400,
                        0,
                        8,
                    )
                    .mops,
                )
            });
        });
    }
    g.bench_function("adaptive_x", |b| {
        b.iter(|| {
            black_box(
                run_hashmap_mods(
                    Platform::rock(),
                    Variant::AdaptiveHl,
                    Mods::default(),
                    8,
                    &w,
                    400,
                    800,
                    9,
                )
                .mops,
            )
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = a1_elide, a2_grouping, a3_bucket_versions, a4_x_model
}
criterion_main!(benches);
