//! Figure 4 bench target: HashMap cells on simulated T2-2 (no HTM, 128
//! hardware threads). See `figures -- fig4` for the full grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ale_bench::{run_hashmap, HashMapWorkload, Variant};
use ale_vtime::Platform;

fn fig4_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_hashmap_t2");
    let w = HashMapWorkload::read_heavy(16 * 1024);
    for variant in [
        Variant::Instrumented,
        Variant::StaticSl(10),
        Variant::AdaptiveSl,
    ] {
        for threads in [1usize, 32] {
            g.bench_with_input(
                BenchmarkId::new(variant.name(), threads),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        black_box(run_hashmap(Platform::t2(), variant, t, &w, 300, 200, 3).mops)
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig4_cells
}
criterion_main!(benches);
