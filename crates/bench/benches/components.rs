//! Component microbenchmarks (wall-clock): the building blocks every
//! figure rests on. Useful for spotting regressions in the hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ale_core::{scope, Ale, AleConfig, CsOptions, StaticPolicy};
use ale_htm::HtmCell;
use ale_sync::{RawLock, SeqLock, Snzi, SpinLock, StatCounter};
use ale_vtime::{Platform, Rng};

fn bench_htm_cell(c: &mut Criterion) {
    let cell = HtmCell::new(0u64);
    c.bench_function("htm_cell/plain_get", |b| {
        b.iter(|| black_box(cell.get()));
    });
    c.bench_function("htm_cell/plain_set", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cell.set(black_box(i));
        });
    });
    c.bench_function("htm_cell/compare_exchange", |b| {
        b.iter(|| {
            let v = cell.get();
            let _ = black_box(cell.compare_exchange(v, v + 1));
        });
    });
}

fn bench_transactions(c: &mut Criterion) {
    let profile = Platform::testbed().htm.unwrap();
    let cells: Vec<HtmCell<u64>> = (0..16).map(HtmCell::new).collect();
    let mut rng = Rng::new(1);
    c.bench_function("htm_txn/read4_write2_commit", |b| {
        b.iter(|| {
            let r = ale_htm::attempt(&profile, &mut rng, || {
                let s = cells[0].get() + cells[1].get() + cells[2].get() + cells[3].get();
                cells[4].set(s);
                cells[5].set(s + 1);
                s
            });
            black_box(r.unwrap());
        });
    });
    c.bench_function("htm_txn/explicit_abort", |b| {
        b.iter(|| {
            let r: Result<(), _> = ale_htm::attempt(&profile, &mut rng, || {
                cells[0].set(1);
                ale_htm::explicit_abort(3);
            });
            black_box(r.unwrap_err());
        });
    });
}

fn bench_sync(c: &mut Criterion) {
    let snzi = Snzi::new(3);
    c.bench_function("snzi/arrive_depart", |b| {
        b.iter(|| {
            let g = snzi.arrive_at(black_box(7));
            black_box(snzi.query());
            drop(g);
        });
    });
    let counter = StatCounter::new();
    let mut rng = Rng::new(2);
    c.bench_function("stat_counter/inc", |b| {
        b.iter(|| counter.inc(&mut rng));
    });
    let seq = SeqLock::new((1u64, 2u64));
    c.bench_function("seqlock/read", |b| {
        b.iter(|| black_box(seq.read()));
    });
    let lock = SpinLock::new();
    c.bench_function("spinlock/uncontended_cycle", |b| {
        b.iter(|| {
            lock.acquire();
            lock.release();
        });
    });
}

fn bench_cs_driver(c: &mut Criterion) {
    // One uncontended critical-section execution through the full driver
    // (granule lookup, policy, stats, HTM attempt) — the per-op overhead
    // every figure pays.
    let ale = Ale::new(AleConfig::new(Platform::testbed()), StaticPolicy::new(3, 8));
    let lock = ale.new_lock("bench", SpinLock::new());
    let cell = HtmCell::new(0u64);
    c.bench_function("driver/htm_mode_cs", |b| {
        b.iter(|| {
            lock.cs_plain(scope!("bench_cs"), CsOptions::new(), |_| {
                cell.set(cell.get() + 1);
            });
        });
    });
    let ale_lockonly = Ale::new(
        AleConfig::new(Platform::testbed())
            .without_htm()
            .without_swopt(),
        StaticPolicy::new(0, 0),
    );
    let lock2 = ale_lockonly.new_lock("bench2", SpinLock::new());
    c.bench_function("driver/lock_mode_cs", |b| {
        b.iter(|| {
            lock2.cs_plain(scope!("bench_cs2"), CsOptions::new(), |_| {
                cell.set(cell.get() + 1);
            });
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_htm_cell, bench_transactions, bench_sync, bench_cs_driver
}
criterion_main!(benches);
