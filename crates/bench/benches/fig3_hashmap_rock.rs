//! Figure 3 bench target: HashMap cells on simulated Rock (fragile
//! best-effort HTM). See `figures -- fig3` for the full grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ale_bench::{run_hashmap, HashMapWorkload, Variant};
use ale_vtime::Platform;

fn fig3_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_hashmap_rock");
    let w = HashMapWorkload::mutate_heavy(16 * 1024);
    for variant in [
        Variant::StaticHl(5),
        Variant::StaticAll(5, 10),
        Variant::AdaptiveAll,
    ] {
        for threads in [1usize, 16] {
            g.bench_with_input(
                BenchmarkId::new(variant.name(), threads),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        black_box(run_hashmap(Platform::rock(), variant, t, &w, 400, 400, 2).mops)
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig3_cells
}
criterion_main!(benches);
