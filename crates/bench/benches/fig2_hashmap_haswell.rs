//! Figure 2 bench target: HashMap cells on simulated Haswell.
//!
//! Criterion measures the wall time to regenerate representative figure
//! cells; the *virtual-time* throughput (the figure's y-axis) is printed by
//! `cargo run -p ale-bench --bin figures -- fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ale_bench::{run_hashmap, HashMapWorkload, Variant};
use ale_vtime::Platform;

fn fig2_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_hashmap_haswell");
    let w = HashMapWorkload::read_heavy(16 * 1024);
    for variant in [
        Variant::Instrumented,
        Variant::StaticHl(5),
        Variant::StaticSl(10),
        Variant::StaticAll(5, 10),
    ] {
        for threads in [1usize, 8] {
            g.bench_with_input(
                BenchmarkId::new(variant.name(), threads),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        black_box(run_hashmap(Platform::haswell(), variant, t, &w, 500, 0, 1).mops)
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig2_cells
}
criterion_main!(benches);
