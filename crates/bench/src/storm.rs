//! Storm-recovery scenario: throughput through an injected abort storm.
//!
//! A counter workload runs through three virtual-time phases — clean,
//! storm, recovery. During the storm every transaction begin is aborted
//! with a conflict (a windowed, thread-scoped
//! [`InjectPlan`](ale_htm::InjectPlan), so the faults hit only this
//! scenario's lanes). The scenario reports per-phase throughput plus the
//! abort-storm circuit breaker's trip/restore counters, so a shape test
//! can assert the resilience story: with the breaker, the runtime stops
//! burning doomed HTM retries almost immediately and restores HTM once the
//! storm passes; without it, every execution pays the full retry budget
//! for the storm's whole duration.

use std::sync::Mutex;

use ale_core::{scope, Ale, AleConfig, CsOptions, ExecMode, StaticPolicy};
use ale_htm::{BreakerConfig, HtmCell, InjectKind, InjectPlan, InjectPoint, InjectRule};
use ale_sync::SpinLock;
use ale_vtime::{now, tick, Event, Platform, Sim};

/// One storm-recovery run's parameters.
#[derive(Debug, Clone)]
pub struct StormConfig {
    pub platform: Platform,
    pub threads: usize,
    /// Circuit-breaker configuration (`None` = the unprotected control).
    pub breaker: Option<BreakerConfig>,
    pub seed: u64,
    /// Phase boundaries in virtual ns: clean `[0, 0.0)`, storm
    /// `[storm_start, storm_end)`, recovery `[storm_end, run_end)`.
    pub storm_start_ns: u64,
    pub storm_end_ns: u64,
    pub run_end_ns: u64,
}

impl StormConfig {
    /// A quick, shape-test-sized run: three 200 µs phases, HTM retry
    /// budget 5, breaker tuned so cool-down probes fit inside the phases.
    pub fn quick(platform: Platform, threads: usize, with_breaker: bool, seed: u64) -> Self {
        StormConfig {
            platform,
            threads,
            breaker: with_breaker.then_some(BreakerConfig {
                window_ns: 20_000,
                trip_permille: 800,
                min_samples: 16,
                cooldown_ns: 10_000,
                max_cooldown_ns: 80_000,
            }),
            seed,
            storm_start_ns: 200_000,
            storm_end_ns: 400_000,
            run_end_ns: 600_000,
        }
    }
}

/// Per-phase throughput and breaker activity for one run.
#[derive(Debug, Clone)]
pub struct StormResult {
    /// Throughput (Mops of virtual time) before / during / after the storm.
    pub pre_mops: f64,
    pub storm_mops: f64,
    pub post_mops: f64,
    /// Breaker trips and restores over the whole run (0 for the control).
    pub trips: u64,
    pub restores: u64,
    /// Operations the recovery phase completed in HTM mode — nonzero iff
    /// hardware elision actually came back after the storm.
    pub post_htm_ops: u64,
}

/// The inject-plan slot is process-global; storm runs must not overlap.
static STORM_SERIAL: Mutex<()> = Mutex::new(());

const CELLS: usize = 16;

/// Execute one storm-recovery run. Deterministic for a fixed config.
pub fn run_storm(cfg: &StormConfig) -> StormResult {
    let _serial = STORM_SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let scope_token = 0x53_54_4F_52_4D ^ cfg.seed; // lanes opt in below

    let mut ale_cfg = AleConfig::new(cfg.platform.clone()).with_seed(cfg.seed);
    if let Some(b) = cfg.breaker.clone() {
        ale_cfg = ale_cfg.with_breaker(b);
    }
    // Build before arming the plan so the startup HTM probe sees healthy
    // hardware (the storm models a conflict storm, not broken HTM).
    let ale = Ale::new(ale_cfg, StaticPolicy::new(5, 0));
    let lock = ale.new_lock("stormLock", SpinLock::new());
    let cells: Vec<HtmCell<u64>> = (0..CELLS as u64).map(HtmCell::new).collect();

    ale_htm::inject::install(
        InjectPlan::new(vec![InjectRule {
            point: InjectPoint::Begin,
            every: 1,
            kind: InjectKind::Conflict,
        }])
        .windowed(cfg.storm_start_ns, cfg.storm_end_ns)
        .scoped(scope_token),
    );

    let (lock_ref, cells_ref) = (&lock, &cells);
    let report = Sim::new(cfg.platform.clone(), cfg.threads)
        .with_seed(cfg.seed)
        .run(|lane| {
            let _scope = ale_htm::inject::enter_scope(scope_token);
            let mut rng = lane.rng().clone();
            let mut ops = [0u64; 3];
            let mut htm_post = 0u64;
            while now() < cfg.run_end_ns {
                let mode = lock_ref.cs_plain(scope!("storm::inc"), CsOptions::new(), |cs| {
                    let c = &cells_ref[rng.gen_range(CELLS as u64) as usize];
                    c.set(c.get() + 1);
                    cs.mode()
                });
                let t = now();
                let phase = if t < cfg.storm_start_ns {
                    0
                } else if t < cfg.storm_end_ns {
                    1
                } else {
                    2
                };
                ops[phase] += 1;
                if phase == 2 && mode == ExecMode::Htm {
                    htm_post += 1;
                }
                tick(Event::LocalWork(1 + rng.gen_range(40)));
            }
            (ops, htm_post)
        });
    ale_htm::inject::clear();

    let mut ops = [0u64; 3];
    let mut post_htm_ops = 0;
    for (lane_ops, htm_post) in &report.results {
        for (total, n) in ops.iter_mut().zip(lane_ops) {
            *total += n;
        }
        post_htm_ops += htm_post;
    }
    let durations = [
        cfg.storm_start_ns,
        cfg.storm_end_ns - cfg.storm_start_ns,
        cfg.run_end_ns - cfg.storm_end_ns,
    ];
    let mops = |phase: usize| ops[phase] as f64 / durations[phase] as f64 * 1_000.0;

    let (mut trips, mut restores) = (0, 0);
    for g in lock.meta().granules.all() {
        if let Some(b) = &g.breaker {
            trips += b.trips();
            restores += b.restores();
        }
    }
    StormResult {
        pre_mops: mops(0),
        storm_mops: mops(1),
        post_mops: mops(2),
        trips,
        restores,
        post_htm_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_run_is_deterministic() {
        let cfg = StormConfig::quick(Platform::haswell(), 2, true, 5);
        let a = run_storm(&cfg);
        let b = run_storm(&cfg);
        assert_eq!(a.pre_mops, b.pre_mops);
        assert_eq!(a.storm_mops, b.storm_mops);
        assert_eq!(a.post_mops, b.post_mops);
        assert_eq!((a.trips, a.restores), (b.trips, b.restores));
    }

    #[test]
    fn breaker_trips_and_restores_through_the_storm() {
        let r = run_storm(&StormConfig::quick(Platform::haswell(), 4, true, 7));
        assert!(r.trips >= 1, "the storm must trip the breaker: {r:?}");
        assert!(r.restores >= 1, "HTM must be restored after it: {r:?}");
        assert!(r.post_htm_ops > 0, "recovery must run in HTM again: {r:?}");
    }

    #[test]
    fn control_without_breaker_reports_no_breaker_activity() {
        let r = run_storm(&StormConfig::quick(Platform::haswell(), 2, false, 7));
        assert_eq!((r.trips, r.restores), (0, 0), "{r:?}");
        assert!(r.pre_mops > 0.0 && r.storm_mops > 0.0 && r.post_mops > 0.0);
    }
}
