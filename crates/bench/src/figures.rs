//! One function per figure / statistic / ablation of the evaluation.
//!
//! Each returns a [`Table`] (CSV rows plus a rendered view); the `figures`
//! binary writes them under `results/`. Thread counts and operation budgets
//! follow the paper's machine sizes, scaled down in `--quick` mode so the
//! whole suite stays tractable on small hosts.

use std::path::Path;

use ale_core::ExecMode;
use ale_kyoto::WickedConfig;
use ale_vtime::Platform;

use crate::harness::{run_hashmap_mods, run_kyoto, HashMapWorkload, RunResult};
use crate::variant::{Mods, Variant};

/// Global options for a figure run.
#[derive(Debug, Clone, Copy)]
pub struct FigOpts {
    /// Shrink thread grids and op budgets (CI / smoke runs).
    pub quick: bool,
    /// Base seed (figures add their own offsets).
    pub seed: u64,
}

impl Default for FigOpts {
    fn default() -> Self {
        FigOpts {
            quick: false,
            seed: 0xF16,
        }
    }
}

/// A rendered result table.
#[derive(Debug, Clone)]
pub struct Table {
    pub id: &'static str,
    pub title: String,
    pub header: String,
    pub rows: Vec<String>,
    /// Prometheus text snapshot of the figure's final ALE run (per-granule
    /// metrics), written as `<id>.prom` next to the CSV. `None` for figures
    /// whose cells are all non-ALE baselines.
    pub prom: Option<String>,
}

impl Table {
    pub fn to_csv(&self) -> String {
        let mut s = format!("{}\n", self.header);
        for r in &self.rows {
            s.push_str(r);
            s.push('\n');
        }
        s
    }

    /// Write `<id>.csv` under `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Write the metrics snapshot as `<id>.prom` under `dir`, if the figure
    /// produced one.
    pub fn write_prom(&self, dir: &Path) -> std::io::Result<Option<std::path::PathBuf>> {
        let Some(prom) = &self.prom else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.prom", self.id));
        std::fs::write(&path, prom)?;
        Ok(Some(path))
    }

    /// Column-aligned rendering for the terminal.
    pub fn render(&self) -> String {
        let mut out = format!("## {} — {}\n", self.id, self.title);
        let split = |s: &str| s.split(',').map(str::to_string).collect::<Vec<_>>();
        let mut grid = vec![split(&self.header)];
        grid.extend(self.rows.iter().map(|r| split(r)));
        let cols = grid.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &grid {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (ri, row) in grid.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
            if ri == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
                out.push('\n');
            }
        }
        out
    }
}

const HDR: &str = "platform,mix,variant,threads,mops";

fn row(mix: &str, r: &RunResult) -> String {
    format!(
        "{},{},{},{},{:.4}",
        r.platform, mix, r.variant, r.threads, r.mops
    )
}

/// Keep the latest ALE cell's metrics snapshot for the figure's `.prom`.
fn keep_prom(slot: &mut Option<String>, r: &RunResult) {
    if let Some(rep) = &r.report {
        *slot = Some(rep.to_prometheus());
    }
}

/// Total measured ops for one cell, split over lanes.
fn ops_per_lane(total: u64, threads: usize) -> u64 {
    (total / threads as u64).max(200)
}

/// Warm-up sized so the adaptive policy converges (≥ ~6k executions per
/// lock across all lanes; the HashMap has one lock).
fn warmup_per_lane(opts: FigOpts, threads: usize) -> u64 {
    let total = if opts.quick { 4_000 } else { 8_000 };
    (total / threads as u64).max(100)
}

fn hashmap_grid(
    id: &'static str,
    title: String,
    platform: Platform,
    threads: &[usize],
    mixes: &[HashMapWorkload],
    opts: FigOpts,
) -> Table {
    let total_ops: u64 = if opts.quick { 4_000 } else { 24_000 };
    let mut rows = Vec::new();
    let mut prom = None;
    for mix in mixes {
        for variant in Variant::figure_set(&platform) {
            for &t in threads {
                let r = run_hashmap_mods(
                    platform.clone(),
                    variant,
                    Mods::default(),
                    t,
                    mix,
                    ops_per_lane(total_ops, t),
                    if variant.is_ale() {
                        warmup_per_lane(opts, t)
                    } else {
                        200
                    },
                    opts.seed ^ (t as u64) << 8,
                );
                eprintln!(
                    "  {id}: {} {} t={t}: {:.3} Mops/s",
                    mix.label(),
                    r.variant,
                    r.mops
                );
                keep_prom(&mut prom, &r);
                rows.push(row(&mix.label(), &r));
            }
        }
    }
    Table {
        id,
        title,
        header: HDR.into(),
        rows,
        prom,
    }
}

fn threads_for(platform: &Platform, quick: bool) -> Vec<usize> {
    let max = platform.logical_threads() as usize;
    let full: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .filter(|&t| t <= max)
        .collect();
    if quick {
        full.into_iter()
            .filter(|t| t.is_power_of_two() && (*t == 1 || t % 4 == 0))
            .collect()
    } else {
        full
    }
}

/// Figure 2 *(inferred)*: HashMap throughput vs threads on Haswell.
pub fn fig2(opts: FigOpts) -> Table {
    let p = Platform::haswell();
    let ks = 16 * 1024;
    hashmap_grid(
        "fig2_hashmap_haswell",
        "HashMap throughput vs threads, Haswell (TSX)".into(),
        p.clone(),
        &threads_for(&p, opts.quick),
        &[
            HashMapWorkload::read_only(ks),
            HashMapWorkload::read_heavy(ks),
            HashMapWorkload::mutate_heavy(ks),
        ],
        opts,
    )
}

/// Figure 3 *(inferred)*: HashMap throughput vs threads on Rock.
pub fn fig3(opts: FigOpts) -> Table {
    let p = Platform::rock();
    let ks = 16 * 1024;
    hashmap_grid(
        "fig3_hashmap_rock",
        "HashMap throughput vs threads, Rock (best-effort HTM)".into(),
        p.clone(),
        &threads_for(&p, opts.quick),
        &[
            HashMapWorkload::read_only(ks),
            HashMapWorkload::read_heavy(ks),
            HashMapWorkload::mutate_heavy(ks),
        ],
        opts,
    )
}

/// Figure 4 *(inferred)*: HashMap throughput vs threads on T2-2 (no HTM).
pub fn fig4(opts: FigOpts) -> Table {
    let p = Platform::t2();
    let ks = 16 * 1024;
    let threads = if opts.quick {
        vec![1, 4, 16, 64]
    } else {
        threads_for(&p, false)
    };
    hashmap_grid(
        "fig4_hashmap_t2",
        "HashMap throughput vs threads, T2-2 (no HTM)".into(),
        p,
        &threads,
        &[
            HashMapWorkload::read_heavy(ks),
            HashMapWorkload::mutate_heavy(ks),
        ],
        opts,
    )
}

/// Figure 5: Kyoto Cabinet `wicked` throughput vs threads (nested RW-lock +
/// slot-lock critical sections), on Haswell and T2-2.
pub fn fig5(opts: FigOpts) -> Table {
    let total_ops: u64 = if opts.quick { 3_000 } else { 16_000 };
    // No whole-database ops in the throughput figure: one `count` scans
    // every record under the exclusive lock and swamps the virtual-time
    // makespan (it stars in `stats-nomutate` instead).
    let cfg = WickedConfig {
        key_space: 16 * 1024,
        count_permille: 0,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let mut prom = None;
    for platform in [Platform::haswell(), Platform::t2()] {
        let threads: Vec<usize> = threads_for(&platform, opts.quick)
            .into_iter()
            .filter(|&t| t <= 64)
            .collect();
        for variant in Variant::figure_set(&platform) {
            for &t in &threads {
                let r = run_kyoto(
                    platform.clone(),
                    variant,
                    t,
                    &cfg,
                    ops_per_lane(total_ops, t),
                    if variant.is_ale() {
                        warmup_per_lane(opts, t)
                    } else {
                        200
                    },
                    opts.seed ^ 0x5A ^ (t as u64) << 8,
                );
                eprintln!(
                    "  fig5: {} {} t={t}: {:.3} Mops/s",
                    r.platform, r.variant, r.mops
                );
                keep_prom(&mut prom, &r);
                rows.push(row("wicked", &r));
            }
        }
    }
    Table {
        id: "fig5_kyoto_wicked",
        title: "Kyoto Cabinet wicked benchmark (nested elision)".into(),
        header: HDR.into(),
        rows,
        prom,
    }
}

/// The §5 inline statistics: `nomutate` on T2-2 (≈42 % misses succeed via
/// SWOpt) and the HTM failure rate of the large exclusive transaction.
pub fn stats_nomutate(opts: FigOpts) -> Table {
    let mut rows = Vec::new();

    // T2-2, SWOpt-only: misses complete optimistically.
    let cfg = WickedConfig::nomutate(16 * 1024);
    let r = run_kyoto(
        Platform::t2(),
        Variant::StaticSl(10),
        8,
        &cfg,
        if opts.quick { 800 } else { 3_000 },
        500,
        opts.seed ^ 0xA0,
    );
    let report = r.report.as_ref().expect("ALE run has a report");
    let mlock = report.lock("mlock").expect("mlock stats");
    let get = mlock
        .granules
        .iter()
        .find(|g| g.context.contains("CacheDb::get"))
        .expect("get granule");
    let swopt_share = get.mode_share(ExecMode::SwOpt).min(1.0);
    rows.push(format!(
        "t2,nomutate,Static-SL-10,8,get_swopt_success_share,{swopt_share:.3}"
    ));
    let miss =
        1.0 - (get.successes.iter().sum::<u64>() as f64 / get.executions.max(1) as f64).min(1.0);
    let _ = miss;

    // Rock, HTMLock: the flattened get (outer RW CS + nested slot CS in
    // one transaction) is the paper's "relatively large hardware
    // transaction … fails in 20 % of the cases". Kyoto records carry
    // byte-string bodies, so each record gets a 24-word payload here —
    // on Rock's fragile HTM (32-entry store budget, high spurious rate)
    // the resulting move-to-front + payload traffic fails noticeably often.
    let cfg2 = WickedConfig {
        key_space: 16 * 1024,
        count_permille: 0,
        payload_cells: 24,
        ..Default::default()
    };
    let r2 = run_kyoto(
        Platform::rock(),
        Variant::StaticHl(5),
        16,
        &cfg2,
        if opts.quick { 800 } else { 3_000 },
        500,
        opts.seed ^ 0xA1,
    );
    let report2 = r2.report.as_ref().unwrap();
    let mlock2 = report2.lock("mlock").unwrap();
    let get2 = mlock2
        .granules
        .iter()
        .find(|g| g.context.contains("CacheDb::get"))
        .expect("get granule");
    let fail = (1.0 - get2.htm_success_ratio().unwrap_or(1.0)).max(0.0);
    rows.push(format!(
        "rock,wicked,Static-HL-5,16,get_htm_attempt_failure_rate,{fail:.3}"
    ));

    Table {
        id: "stats_nomutate",
        title: "§5 inline statistics (SWOpt miss fast-path; large-tx HTM failures)".into(),
        header: "platform,workload,variant,threads,metric,value".into(),
        rows,
        prom: Some(report2.to_prometheus()),
    }
}

/// The §3.4 statistics/profiling report, demonstrated on a mixed HashMap
/// run (rendered as text, stored alongside the CSVs).
pub fn report_demo(opts: FigOpts) -> (Table, String) {
    let w = HashMapWorkload::mutate_heavy(4 * 1024);
    let r = run_hashmap_mods(
        Platform::haswell(),
        Variant::AdaptiveAll,
        Mods::default(),
        4,
        &w,
        if opts.quick { 1_000 } else { 4_000 },
        2_000,
        opts.seed ^ 0xB0,
    );
    let report = r.report.as_ref().unwrap();
    let mut rows = Vec::new();
    for lock in &report.locks {
        for g in &lock.granules {
            rows.push(format!(
                "{},{},{},{},{},{},{},{},{}",
                lock.label,
                g.context.replace(',', ";"),
                g.executions,
                g.successes[0],
                g.successes[1],
                g.successes[2],
                g.swopt_fails,
                g.lock_held_aborts + g.conflict_aborts + g.capacity_aborts + g.spurious_aborts,
                g.policy.replace(',', ";"),
            ));
        }
    }
    let table = Table {
        id: "report_granules",
        title: "§3.4 per-(lock, context) statistics report".into(),
        header:
            "lock,context,executions,htm_succ,swopt_succ,lock_succ,swopt_fails,htm_aborts,policy"
                .into(),
        rows,
        prom: Some(report.to_prometheus()),
    };
    (table, report.to_string())
}

/// Ablation A1: `COULD_SWOPT_BE_RUNNING` bump elision on vs off (§3.3).
/// The paper's claim: bumping `tblVer` unconditionally makes concurrent
/// HTM mutators conflict with each other; eliding the bump when no SWOpt
/// path runs removes those aborts.
pub fn ablate_elide(opts: FigOpts) -> Table {
    // Longer chains lengthen the transactions, so the version-word
    // conflict window is realistic.
    let w = HashMapWorkload::mutate_heavy(8 * 1024).with_buckets(512);
    let mut rows = Vec::new();
    let mut prom = None;
    let total = if opts.quick { 4_000 } else { 16_000 };
    for (label, mods) in [
        ("elide", Mods::default()),
        (
            "always-bump",
            Mods {
                force_bump: true,
                ..Default::default()
            },
        ),
    ] {
        for t in [1usize, 2, 4, 8] {
            let r = run_hashmap_mods(
                Platform::haswell(),
                Variant::StaticHl(5),
                mods,
                t,
                &w,
                ops_per_lane(total, t),
                200,
                opts.seed ^ 0xC0,
            );
            let aborts: u64 = r
                .report
                .as_ref()
                .map(|rep| {
                    rep.locks
                        .iter()
                        .flat_map(|l| &l.granules)
                        .map(|g| g.conflict_aborts)
                        .sum()
                })
                .unwrap_or(0);
            let per_kop = aborts as f64 * 1000.0 / r.total_ops as f64;
            eprintln!(
                "  ablate-elide: {label} t={t}: {:.3} Mops/s, {per_kop:.1} conflict aborts/kop",
                r.mops
            );
            keep_prom(&mut prom, &r);
            rows.push(format!(
                "haswell,{},{label},{},{:.4},{per_kop:.2}",
                w.label(),
                t,
                r.mops
            ));
        }
    }
    Table {
        id: "ablate_elide",
        title: "A1: HTM throughput and conflict aborts with/without version-bump elision".into(),
        header: "platform,mix,elision,threads,mops,conflict_aborts_per_kop".into(),
        rows,
        prom,
    }
}

/// Ablation A2: the grouping mechanism on vs off (§4.2).
pub fn ablate_group(opts: FigOpts) -> Table {
    // SWOpt-heavy workload with frequent conflicting actions AND long
    // optimistic read sections (long chains), so readers retry repeatedly
    // without grouping — the §4.2 scenario.
    let w = HashMapWorkload::mutate_heavy(4 * 1024).with_buckets(64);
    let mut rows = Vec::new();
    let mut prom = None;
    let total = if opts.quick { 4_000 } else { 16_000 };
    for (label, mods) in [
        (
            "grouping",
            Mods {
                static_grouping: true,
                ..Default::default()
            },
        ),
        (
            // The paper's §4.2 suggestion: respect the SNZI with some
            // probability, keeping eventual deferral.
            "prob-grouping-25%",
            Mods {
                static_grouping: true,
                prob_grouping_permille: Some(250),
                ..Default::default()
            },
        ),
        (
            "no-grouping",
            Mods {
                grouping_off: true,
                ..Default::default()
            },
        ),
    ] {
        for t in [8usize, 32, 64] {
            let r = run_hashmap_mods(
                Platform::t2(),
                Variant::StaticSl(24),
                mods,
                t,
                &w,
                ops_per_lane(total, t),
                200,
                opts.seed ^ 0xD0,
            );
            let fails: u64 = r
                .report
                .as_ref()
                .map(|rep| {
                    rep.locks
                        .iter()
                        .flat_map(|l| &l.granules)
                        .map(|g| g.swopt_fails)
                        .sum()
                })
                .unwrap_or(0);
            let per_op = fails as f64 / r.total_ops as f64;
            eprintln!(
                "  ablate-group: {label} t={t}: {:.3} Mops/s, {per_op:.3} retries/op",
                r.mops
            );
            keep_prom(&mut prom, &r);
            rows.push(format!(
                "t2,{},{label},{},{:.4},{per_op:.4}",
                w.label(),
                t,
                r.mops
            ));
        }
    }
    Table {
        id: "ablate_group",
        title: "A2: SWOpt grouping mechanism on/off".into(),
        header: "platform,mix,grouping,threads,mops,swopt_retries_per_op".into(),
        rows,
        prom,
    }
}

/// Ablation A3: single `tblVer` vs per-bucket version numbers (§3.2's
/// untested suggestion).
pub fn ablate_buckets(opts: FigOpts) -> Table {
    let mut rows = Vec::new();
    let mut prom = None;
    let total = if opts.quick { 4_000 } else { 16_000 };
    for stripes in [1usize, 64] {
        let w = HashMapWorkload::mutate_heavy(2 * 1024).with_version_stripes(stripes);
        for t in [8usize, 32, 64] {
            let r = run_hashmap_mods(
                Platform::t2(),
                Variant::StaticSl(24),
                Mods::default(),
                t,
                &w,
                ops_per_lane(total, t),
                200,
                opts.seed ^ 0xE0,
            );
            eprintln!(
                "  ablate-buckets: stripes={stripes} t={t}: {:.3} Mops/s",
                r.mops
            );
            keep_prom(&mut prom, &r);
            rows.push(format!("t2,{},{stripes},{},{:.4}", w.label(), t, r.mops));
        }
    }
    Table {
        id: "ablate_buckets",
        title: "A3: global vs per-bucket version numbers".into(),
        header: "platform,mix,version_stripes,threads,mops".into(),
        rows,
        prom,
    }
}

/// Ablation A4: the adaptive X model vs a static X sweep (§4.2).
pub fn ablate_x(opts: FigOpts) -> Table {
    let w = HashMapWorkload::mutate_heavy(16 * 1024);
    let mut rows = Vec::new();
    let total = if opts.quick { 4_000 } else { 16_000 };
    let t = 8usize;
    for x in [1u32, 2, 4, 6, 8, 10] {
        let r = run_hashmap_mods(
            Platform::rock(),
            Variant::StaticHl(x),
            Mods::default(),
            t,
            &w,
            ops_per_lane(total, t),
            200,
            opts.seed ^ 0xF0,
        );
        eprintln!("  ablate-x: Static-HL-{x}: {:.3} Mops/s", r.mops);
        rows.push(format!(
            "rock,{},Static-HL-{x},{t},{:.4}",
            w.label(),
            r.mops
        ));
    }
    let r = run_hashmap_mods(
        Platform::rock(),
        Variant::AdaptiveHl,
        Mods::default(),
        t,
        &w,
        ops_per_lane(total, t),
        warmup_per_lane(opts, t),
        opts.seed ^ 0xF1,
    );
    let learned = r
        .report
        .as_ref()
        .and_then(|rep| rep.lock("tblLock").map(|l| l.policy.clone()))
        .unwrap_or_default();
    eprintln!("  ablate-x: Adaptive-HL: {:.3} Mops/s ({learned})", r.mops);
    rows.push(format!("rock,{},Adaptive-HL,{t},{:.4}", w.label(), r.mops));
    Table {
        id: "ablate_x",
        title: "A4: static X sweep vs the adaptive X model".into(),
        header: "platform,mix,variant,threads,mops".into(),
        rows,
        prom: r.report.as_ref().map(|rep| rep.to_prometheus()),
    }
}

/// Extension experiment: key skew. The paper stresses that "workload
/// characteristics" drive the choice of technique; Zipfian skew
/// concentrates conflicts on hot keys, hurting both elision flavours but
/// SWOpt (whose readers get invalidated by *any* hot-key mutation under a
/// shared version word) more than HTM (which only conflicts on actual
/// data overlap).
pub fn zipf(opts: FigOpts) -> Table {
    let mut rows = Vec::new();
    let mut prom = None;
    let total = if opts.quick { 4_000 } else { 16_000 };
    let t = 8usize;
    for theta in [None, Some(0.6), Some(0.9), Some(0.99)] {
        // Small key space so the hot ranks actually collide in flight.
        let mut w = HashMapWorkload::mutate_heavy(1024);
        if let Some(th) = theta {
            w = w.with_zipf(th);
        }
        let label = theta
            .map(|t| format!("zipf-{t}"))
            .unwrap_or_else(|| "uniform".into());
        for variant in [
            Variant::StaticHl(5),
            Variant::StaticSl(10),
            Variant::AdaptiveAll,
        ] {
            let r = run_hashmap_mods(
                Platform::haswell(),
                variant,
                Mods::default(),
                t,
                &w,
                ops_per_lane(total, t),
                warmup_per_lane(opts, t),
                opts.seed ^ 0x21,
            );
            let aborts: u64 = r
                .report
                .as_ref()
                .map(|rep| {
                    rep.locks
                        .iter()
                        .flat_map(|l| &l.granules)
                        .map(|g| g.conflict_aborts + g.swopt_fails)
                        .sum()
                })
                .unwrap_or(0);
            let per_kop = aborts as f64 * 1000.0 / r.total_ops as f64;
            eprintln!(
                "  zipf: {label} {}: {:.3} Mops/s, {per_kop:.1} conflicts/kop",
                r.variant, r.mops
            );
            keep_prom(&mut prom, &r);
            rows.push(format!(
                "haswell,{},{label},{},{:.4},{per_kop:.2}",
                w.label(),
                r.variant,
                r.mops
            ));
        }
    }
    Table {
        id: "zipf_skew",
        title: "Extension: key skew (Zipfian) vs technique choice".into(),
        header: "platform,mix,skew,variant,mops,conflict_events_per_kop".into(),
        rows,
        prom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_csvs() {
        let t = Table {
            id: "t",
            title: "demo".into(),
            header: "a,b".into(),
            rows: vec!["1,2".into(), "333,4".into()],
            prom: None,
        };
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n333,4\n");
        let r = t.render();
        assert!(r.contains("## t — demo"));
        assert!(r.contains("333"));
    }

    #[test]
    fn thread_grids_respect_platform_budget() {
        assert_eq!(threads_for(&Platform::haswell(), false), vec![1, 2, 4, 8]);
        assert_eq!(
            threads_for(&Platform::t2(), false),
            vec![1, 2, 4, 8, 16, 32, 64, 128]
        );
        let quick = threads_for(&Platform::t2(), true);
        assert!(quick.len() < 8);
        assert!(quick.contains(&1));
    }

    #[test]
    fn ops_split_has_floor() {
        assert_eq!(ops_per_lane(24_000, 8), 3_000);
        assert_eq!(ops_per_lane(1_000, 64), 200);
    }
}
