//! Workload runners: execute one (platform, variant, thread-count) cell of
//! a figure under the virtual-time simulator and report throughput.
//!
//! Following the paper's methodology, runs with an adaptive policy include
//! a warm-up pass so measured throughput reflects the *converged*
//! configuration (the paper measures long steady-state runs; our simulated
//! runs are shorter, so the warm-up keeps the comparison fair). Static
//! variants get the same warm-up for symmetry.

use ale_core::Report;
use ale_hashmap::{AleHashMap, AleShardedMap, BaselineHashMap, MapConfig, ShardedMapConfig};
use ale_kyoto::{AleCacheDb, DbConfig, KyotoDb, TrylockspinDb, WickedConfig};
use ale_vtime::{Platform, Rng, Sim, Zipf};

use crate::variant::{Mods, Variant};

/// The HashMap microbenchmark's workload parameters (§5): uniform random
/// keys, an insert/remove/get mix, half the key space prefilled.
#[derive(Debug, Clone)]
pub struct HashMapWorkload {
    pub key_space: u64,
    /// Inserts per mille of operations.
    pub insert_pm: u32,
    /// Removes per mille of operations.
    pub remove_pm: u32,
    /// Version-number stripes (1 = the paper's single `tblVer`; more =
    /// per-bucket versions, ablation A3).
    pub version_stripes: usize,
    /// Bucket-count override (None = key_space / 4). Small values make
    /// long chains, i.e. long optimistic read sections.
    pub buckets: Option<usize>,
    /// Zipfian key skew `theta` (None = uniform keys). Hot keys make HTM
    /// transactions conflict on the same nodes and invalidate SWOpt
    /// readers far more often.
    pub zipf_theta: Option<f64>,
}

impl HashMapWorkload {
    /// Read-only mix.
    pub fn read_only(key_space: u64) -> Self {
        HashMapWorkload {
            key_space,
            insert_pm: 0,
            remove_pm: 0,
            version_stripes: 1,
            buckets: None,
            zipf_theta: None,
        }
    }

    /// 2 % insert / 2 % remove / 96 % get.
    pub fn read_heavy(key_space: u64) -> Self {
        HashMapWorkload {
            key_space,
            insert_pm: 20,
            remove_pm: 20,
            version_stripes: 1,
            buckets: None,
            zipf_theta: None,
        }
    }

    /// 20 % insert / 20 % remove / 60 % get.
    pub fn mutate_heavy(key_space: u64) -> Self {
        HashMapWorkload {
            key_space,
            insert_pm: 200,
            remove_pm: 200,
            version_stripes: 1,
            buckets: None,
            zipf_theta: None,
        }
    }

    /// Per-bucket version numbers (ablation A3).
    pub fn with_version_stripes(mut self, stripes: usize) -> Self {
        self.version_stripes = stripes;
        self
    }

    /// Override the bucket count (long chains = long optimistic reads).
    pub fn with_buckets(mut self, buckets: usize) -> Self {
        self.buckets = Some(buckets);
        self
    }

    /// Draw keys Zipfian with skew `theta` instead of uniformly.
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.zipf_theta = Some(theta);
        self
    }

    pub fn label(&self) -> String {
        format!(
            "{}i/{}r/{}g",
            self.insert_pm / 10,
            self.remove_pm / 10,
            (1000 - self.insert_pm - self.remove_pm) / 10
        )
    }

    fn key_sampler(&self) -> Option<Zipf> {
        self.zipf_theta.map(|t| Zipf::new(self.key_space, t))
    }

    #[inline]
    fn run_op(
        &self,
        zipf: Option<&Zipf>,
        rng: &mut Rng,
        get: &mut impl FnMut(u64),
        insert: &mut impl FnMut(u64),
        remove: &mut impl FnMut(u64),
    ) {
        let key = match zipf {
            // Scramble ranks over the key space so hot keys spread across
            // buckets/slots (rank 0 is hottest).
            Some(z) => z.sample(rng).wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.key_space,
            None => rng.gen_range(self.key_space),
        };
        let dice = rng.gen_range(1000) as u32;
        if dice < self.insert_pm {
            insert(key);
        } else if dice < self.insert_pm + self.remove_pm {
            remove(key);
        } else {
            get(key);
        }
    }
}

/// One figure cell's outcome.
#[derive(Debug)]
pub struct RunResult {
    pub variant: String,
    pub platform: &'static str,
    pub threads: usize,
    pub total_ops: u64,
    pub makespan_ns: u64,
    /// Million operations per second of virtual time.
    pub mops: f64,
    /// The ALE statistics report (None for Uninstrumented).
    pub report: Option<Report>,
}

impl RunResult {
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.4}",
            self.platform, self.variant, self.threads, self.total_ops, self.makespan_ns, self.mops
        )
    }

    pub const CSV_HEADER: &'static str = "platform,variant,threads,total_ops,makespan_ns,mops";
}

/// Scheduler slack for benchmark runs: trades a little interleaving
/// fidelity for far fewer lane handoffs (see `ale-vtime`). Zero keeps the
/// exact conservative schedule; figures use a small slack for speed.
pub const BENCH_SLACK_NS: u64 = 300;

/// Execute the HashMap microbenchmark.
pub fn run_hashmap(
    platform: Platform,
    variant: Variant,
    threads: usize,
    workload: &HashMapWorkload,
    ops_per_lane: u64,
    warmup_per_lane: u64,
    seed: u64,
) -> RunResult {
    run_hashmap_mods(
        platform,
        variant,
        Mods::default(),
        threads,
        workload,
        ops_per_lane,
        warmup_per_lane,
        seed,
    )
}

/// [`run_hashmap`] with ablation modifiers.
#[allow(clippy::too_many_arguments)]
pub fn run_hashmap_mods(
    platform: Platform,
    variant: Variant,
    mods: Mods,
    threads: usize,
    workload: &HashMapWorkload,
    ops_per_lane: u64,
    warmup_per_lane: u64,
    seed: u64,
) -> RunResult {
    let kind = platform.kind.name();
    let buckets = workload
        .buckets
        .unwrap_or((workload.key_space as usize / 4).clamp(64, 1 << 16));

    if variant == Variant::Uninstrumented {
        let map: BaselineHashMap<u64> =
            BaselineHashMap::new(buckets, workload.key_space * 2 + 4096);
        for k in (0..workload.key_space).step_by(2) {
            map.insert(k, k.wrapping_mul(31));
        }
        let zipf = workload.key_sampler();
        let body = |lane: &mut ale_vtime::Lane, ops: u64| {
            let mut rng = lane.rng().clone();
            let mut sink = 0u64;
            for _ in 0..ops {
                workload.run_op(
                    zipf.as_ref(),
                    &mut rng,
                    &mut |k| {
                        let mut v = 0;
                        if map.get(k, &mut v) {
                            sink ^= v;
                        }
                    },
                    &mut |k| {
                        map.insert(k, k.wrapping_mul(31));
                    },
                    &mut |k| {
                        map.remove(k);
                    },
                );
            }
            std::hint::black_box(sink);
        };
        if warmup_per_lane > 0 {
            Sim::new(platform.clone(), threads)
                .with_seed(seed)
                .with_slack(BENCH_SLACK_NS)
                .run(|lane| body(lane, warmup_per_lane));
        }
        let report = Sim::new(platform, threads)
            .with_seed(seed ^ 0xBEEF)
            .with_slack(BENCH_SLACK_NS)
            .run(|lane| body(lane, ops_per_lane));
        let total = ops_per_lane * threads as u64;
        return RunResult {
            variant: variant.name(),
            platform: kind,
            threads,
            total_ops: total,
            makespan_ns: report.makespan_ns,
            mops: report.throughput(total) / 1e6,
            report: None,
        };
    }

    let ale = variant.build_ale_mods(platform.clone(), seed, mods);
    let map: AleHashMap<u64> = AleHashMap::new(
        &ale,
        MapConfig::new(buckets)
            .with_capacity(workload.key_space * 2 + 4096)
            .with_version_stripes(workload.version_stripes),
    );
    for k in (0..workload.key_space).step_by(2) {
        map.insert(k, k.wrapping_mul(31));
    }
    // Setup traffic (single-threaded, real-time, insert-only) must not
    // pollute what the policy learns about the measured workload.
    ale.reset_statistics();
    let zipf = workload.key_sampler();
    let body = |lane: &mut ale_vtime::Lane, ops: u64| {
        let mut rng = lane.rng().clone();
        let mut sink = 0u64;
        for _ in 0..ops {
            workload.run_op(
                zipf.as_ref(),
                &mut rng,
                &mut |k| {
                    let mut v = 0;
                    if map.get(k, &mut v) {
                        sink ^= v;
                    }
                },
                &mut |k| {
                    map.insert(k, k.wrapping_mul(31));
                },
                &mut |k| {
                    map.remove(k);
                },
            );
        }
        std::hint::black_box(sink);
    };
    if warmup_per_lane > 0 {
        Sim::new(platform.clone(), threads)
            .with_seed(seed)
            .with_slack(BENCH_SLACK_NS)
            .run(|lane| body(lane, warmup_per_lane));
    }
    let report = Sim::new(platform, threads)
        .with_seed(seed ^ 0xBEEF)
        .with_slack(BENCH_SLACK_NS)
        .run(|lane| body(lane, ops_per_lane));
    let total = ops_per_lane * threads as u64;
    RunResult {
        variant: variant.name(),
        platform: kind,
        threads,
        total_ops: total,
        makespan_ns: report.makespan_ns,
        mops: report.throughput(total) / 1e6,
        report: Some(ale.report()),
    }
}

/// Execute the HashMap microbenchmark against the *sharded* map: the same
/// op mix as [`run_hashmap`], but keys route across `shards` independent
/// granules. Total buckets and node capacity match what the single-lock
/// run would get, so a throughput difference is the locking granularity —
/// per-shard version stripes confine write invalidation to the written
/// shard's optimistic readers, where the single-lock map (at
/// `version_stripes = 1`) invalidates every concurrent SWOpt reader on
/// every write. Incremental resize stays armed at the default threshold:
/// an undersized initial table grows out of its long chains during
/// prefill and warm-up (something the single-lock map cannot do), and by
/// the measured pass the map is at steady state — runs stay deterministic
/// either way.
///
/// `variant` must be an instrumented flavour — the sharded map is an ALE
/// structure and has no uninstrumented baseline.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded(
    platform: Platform,
    variant: Variant,
    threads: usize,
    shards: usize,
    workload: &HashMapWorkload,
    ops_per_lane: u64,
    warmup_per_lane: u64,
    seed: u64,
) -> RunResult {
    assert!(
        variant != Variant::Uninstrumented,
        "the sharded map has no uninstrumented baseline"
    );
    let kind = platform.kind.name();
    let total_buckets = workload
        .buckets
        .unwrap_or((workload.key_space as usize / 4).clamp(64, 1 << 16));
    let buckets_per_shard = (total_buckets / shards).max(4);

    let ale = variant.build_ale_mods(platform.clone(), seed, Mods::default());
    let map: AleShardedMap<u64> = AleShardedMap::new(
        &ale,
        ShardedMapConfig::new(shards)
            .with_buckets_per_shard(buckets_per_shard)
            .with_capacity_per_shard((workload.key_space * 2) / shards as u64 + 4096)
            .with_version_stripes(workload.version_stripes),
    );
    for k in (0..workload.key_space).step_by(2) {
        map.insert(k, k.wrapping_mul(31));
    }
    ale.reset_statistics();
    let zipf = workload.key_sampler();
    let body = |lane: &mut ale_vtime::Lane, ops: u64| {
        let mut rng = lane.rng().clone();
        let mut sink = 0u64;
        for _ in 0..ops {
            workload.run_op(
                zipf.as_ref(),
                &mut rng,
                &mut |k| {
                    let mut v = 0;
                    if map.get(k, &mut v) {
                        sink ^= v;
                    }
                },
                &mut |k| {
                    map.insert(k, k.wrapping_mul(31));
                },
                &mut |k| {
                    map.remove(k);
                },
            );
        }
        std::hint::black_box(sink);
    };
    if warmup_per_lane > 0 {
        Sim::new(platform.clone(), threads)
            .with_seed(seed)
            .with_slack(BENCH_SLACK_NS)
            .run(|lane| body(lane, warmup_per_lane));
    }
    let report = Sim::new(platform, threads)
        .with_seed(seed ^ 0xBEEF)
        .with_slack(BENCH_SLACK_NS)
        .run(|lane| body(lane, ops_per_lane));
    let total = ops_per_lane * threads as u64;
    RunResult {
        variant: format!("Sharded{}x-{}", map.shard_count(), variant.name()),
        platform: kind,
        threads,
        total_ops: total,
        makespan_ns: report.makespan_ns,
        mops: report.throughput(total) / 1e6,
        report: Some(ale.report()),
    }
}

/// Execute the Kyoto `wicked` benchmark.
pub fn run_kyoto(
    platform: Platform,
    variant: Variant,
    threads: usize,
    cfg: &WickedConfig,
    ops_per_lane: u64,
    warmup_per_lane: u64,
    seed: u64,
) -> RunResult {
    let kind = platform.kind.name();
    let db_cfg = DbConfig {
        buckets_per_slot: ((cfg.key_space as usize / 16).next_power_of_two()).clamp(64, 1 << 14),
        capacity_per_slot: cfg.key_space / 4 + 4096,
        payload_cells: cfg.payload_cells,
    };

    let run = |db: &dyn KyotoDb, ale: Option<&std::sync::Arc<ale_core::Ale>>| -> RunResult {
        ale_kyoto::prefill(db, cfg, seed);
        if let Some(a) = ale {
            a.reset_statistics();
        }
        let body = |lane: &mut ale_vtime::Lane, ops: u64| {
            let mut rng = lane.rng().clone();
            let mut stats = ale_kyoto::WickedStats::default();
            for _ in 0..ops {
                ale_kyoto::wicked_op(db, cfg, &mut rng, &mut stats);
            }
            stats
        };
        if warmup_per_lane > 0 {
            Sim::new(platform.clone(), threads)
                .with_seed(seed)
                .with_slack(BENCH_SLACK_NS)
                .run(|lane| body(lane, warmup_per_lane));
        }
        let report = Sim::new(platform.clone(), threads)
            .with_seed(seed ^ 0xBEEF)
            .with_slack(BENCH_SLACK_NS)
            .run(|lane| body(lane, ops_per_lane));
        let total = ops_per_lane * threads as u64;
        RunResult {
            variant: variant.name(),
            platform: kind,
            threads,
            total_ops: total,
            makespan_ns: report.makespan_ns,
            mops: report.throughput(total) / 1e6,
            report: ale.map(|a| a.report()),
        }
    };

    if variant == Variant::Uninstrumented {
        let db = TrylockspinDb::with_payload(
            db_cfg.buckets_per_slot,
            db_cfg.capacity_per_slot,
            db_cfg.payload_cells,
        );
        run(&db, None)
    } else {
        let ale = variant.build_ale_mods(platform.clone(), seed, Mods::default());
        let db = AleCacheDb::new(&ale, db_cfg);
        run(&db, Some(&ale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_runner_produces_throughput() {
        let w = HashMapWorkload::read_heavy(512);
        let r = run_hashmap(
            Platform::testbed(),
            Variant::StaticAll(3, 8),
            2,
            &w,
            300,
            50,
            1,
        );
        assert!(r.mops > 0.0, "{r:?}");
        assert_eq!(r.total_ops, 600);
        assert!(r.report.is_some());
        assert!(r.csv_row().starts_with("testbed,Static-All-3:8,2,"));
        let base = run_hashmap(
            Platform::testbed(),
            Variant::Uninstrumented,
            2,
            &w,
            300,
            0,
            1,
        );
        assert!(base.mops > 0.0);
        assert!(base.report.is_none());
    }

    #[test]
    fn kyoto_runner_produces_throughput() {
        let cfg = WickedConfig {
            key_space: 512,
            count_permille: 0,
            ..Default::default()
        };
        let r = run_kyoto(
            Platform::testbed(),
            Variant::StaticAll(3, 8),
            2,
            &cfg,
            200,
            50,
            2,
        );
        assert!(r.mops > 0.0, "{r:?}");
        let base = run_kyoto(
            Platform::testbed(),
            Variant::Uninstrumented,
            2,
            &cfg,
            200,
            0,
            2,
        );
        assert!(base.mops > 0.0);
    }

    #[test]
    fn sharded_runner_produces_throughput_and_is_deterministic() {
        let w = HashMapWorkload::read_heavy(512).with_zipf(1.1);
        let run = || {
            run_sharded(
                Platform::testbed(),
                Variant::StaticAll(3, 8),
                2,
                4,
                &w,
                300,
                50,
                1,
            )
        };
        let a = run();
        let b = run();
        assert!(a.mops > 0.0, "{a:?}");
        assert_eq!(a.total_ops, 600);
        assert_eq!(
            a.makespan_ns, b.makespan_ns,
            "sharded run not deterministic"
        );
        assert!(a.variant.starts_with("Sharded4x-"), "{}", a.variant);
        assert!(a.report.is_some());
    }

    #[test]
    fn workload_mix_labels() {
        assert_eq!(HashMapWorkload::read_only(10).label(), "0i/0r/100g");
        assert_eq!(HashMapWorkload::mutate_heavy(10).label(), "20i/20r/60g");
    }

    #[test]
    fn runs_are_deterministic() {
        let w = HashMapWorkload::mutate_heavy(256);
        let a = run_hashmap(
            Platform::haswell(),
            Variant::StaticAll(4, 8),
            4,
            &w,
            200,
            0,
            9,
        );
        let b = run_hashmap(
            Platform::haswell(),
            Variant::StaticAll(4, 8),
            4,
            &w,
            200,
            0,
            9,
        );
        assert_eq!(a.makespan_ns, b.makespan_ns);
    }
}
