//! The named configurations of the paper's figures (§5).
//!
//! "Instrumented denotes a version that is integrated with ALE … but only
//! the lock is used … Uninstrumented denotes a baseline implementation
//! that is not integrated with ALE. Other versions are named by the
//! policy, the techniques used — HTM, SWOpt, or both (denoted as All) —
//! and relevant parameters … For readability in figures, we abbreviate
//! HTMLock as HL and SWOPTLock as SL."

use std::sync::Arc;

use ale_core::{AdaptivePolicy, Ale, AleConfig, StaticPolicy};
use ale_vtime::Platform;

/// Cross-cutting modifiers for ablation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mods {
    /// Disable the grouping mechanism (ablation A2).
    pub grouping_off: bool,
    /// Enable grouping under the *static* policy (ablation A2's "on" arm;
    /// the paper ties grouping to the adaptive policy).
    pub static_grouping: bool,
    /// Disable the version-bump elision (ablation A1).
    pub force_bump: bool,
    /// Probabilistic grouping deferral (per mille; None = always defer).
    pub prob_grouping_permille: Option<u64>,
}

/// A figure-legend configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// No ALE integration at all (plain lock).
    Uninstrumented,
    /// ALE-integrated, Lock mode only (measures library overhead).
    Instrumented,
    /// Static policy, HTM+Lock, up to `x` HTM attempts.
    StaticHl(u32),
    /// Static policy, SWOpt+Lock, up to `y` SWOpt attempts.
    StaticSl(u32),
    /// Static policy, HTM+SWOpt+Lock, up to `x` HTM then `y` SWOpt.
    StaticAll(u32, u32),
    /// Adaptive policy, HTM+Lock available.
    AdaptiveHl,
    /// Adaptive policy, SWOpt+Lock available.
    AdaptiveSl,
    /// Adaptive policy, everything available.
    AdaptiveAll,
}

impl Variant {
    /// Figure-legend name (`Static-All-10:10`, `Adaptive-HL`, …).
    pub fn name(self) -> String {
        match self {
            Variant::Uninstrumented => "Uninstrumented".into(),
            Variant::Instrumented => "Instrumented".into(),
            Variant::StaticHl(x) => format!("Static-HL-{x}"),
            Variant::StaticSl(y) => format!("Static-SL-{y}"),
            Variant::StaticAll(x, y) => format!("Static-All-{x}:{y}"),
            Variant::AdaptiveHl => "Adaptive-HL".into(),
            Variant::AdaptiveSl => "Adaptive-SL".into(),
            Variant::AdaptiveAll => "Adaptive-All".into(),
        }
    }

    /// Does this variant use the ALE library at all?
    pub fn is_ale(self) -> bool {
        !matches!(self, Variant::Uninstrumented)
    }

    /// Build the [`Ale`] instance for this variant on `platform`
    /// (panics for `Uninstrumented`, which has no library instance).
    pub fn build_ale(self, platform: Platform, seed: u64) -> Arc<Ale> {
        self.build_ale_mods(platform, seed, Mods::default())
    }

    /// [`Variant::build_ale`] with ablation modifiers applied.
    pub fn build_ale_mods(self, platform: Platform, seed: u64, mods: Mods) -> Arc<Ale> {
        let mut base = AleConfig::new(platform).with_seed(seed);
        if mods.grouping_off {
            base = base.without_grouping();
        }
        if mods.force_bump {
            base = base.with_forced_version_bump();
        }
        if let Some(p) = mods.prob_grouping_permille {
            base = base.with_probabilistic_grouping(p);
        }
        let static_pol = |x: u32, y: u32| {
            if mods.static_grouping {
                StaticPolicy::new(x, y).with_grouping()
            } else {
                StaticPolicy::new(x, y)
            }
        };
        match self {
            Variant::Uninstrumented => panic!("Uninstrumented has no ALE instance"),
            Variant::Instrumented => Ale::new(base.without_htm().without_swopt(), static_pol(0, 0)),
            Variant::StaticHl(x) => Ale::new(base.without_swopt(), static_pol(x, 0)),
            Variant::StaticSl(y) => Ale::new(base.without_htm(), static_pol(0, y)),
            Variant::StaticAll(x, y) => Ale::new(base, static_pol(x, y)),
            Variant::AdaptiveHl => Ale::new(base.without_swopt(), AdaptivePolicy::new()),
            Variant::AdaptiveSl => Ale::new(base.without_htm(), AdaptivePolicy::new()),
            Variant::AdaptiveAll => Ale::new(base, AdaptivePolicy::new()),
        }
    }

    /// The default comparison set for a platform (HTM-less platforms skip
    /// HTM-only variants, as the paper's T2-2 figures do).
    pub fn figure_set(platform: &Platform) -> Vec<Variant> {
        if platform.has_htm() {
            vec![
                Variant::Uninstrumented,
                Variant::Instrumented,
                Variant::StaticHl(5),
                Variant::StaticSl(10),
                Variant::StaticAll(5, 10),
                Variant::AdaptiveAll,
            ]
        } else {
            vec![
                Variant::Uninstrumented,
                Variant::Instrumented,
                Variant::StaticSl(10),
                Variant::AdaptiveSl,
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_convention() {
        assert_eq!(Variant::StaticAll(10, 10).name(), "Static-All-10:10");
        assert_eq!(Variant::StaticHl(2).name(), "Static-HL-2");
        assert_eq!(Variant::StaticSl(7).name(), "Static-SL-7");
        assert_eq!(Variant::AdaptiveAll.name(), "Adaptive-All");
        assert!(!Variant::Uninstrumented.is_ale());
        assert!(Variant::Instrumented.is_ale());
    }

    #[test]
    fn build_ale_respects_technique_switches() {
        let p = Platform::testbed();
        let hl = Variant::StaticHl(3).build_ale(p.clone(), 1);
        assert!(hl.config().enable_htm && !hl.config().enable_swopt);
        let sl = Variant::StaticSl(3).build_ale(p.clone(), 1);
        assert!(!sl.config().enable_htm && sl.config().enable_swopt);
        let instr = Variant::Instrumented.build_ale(p.clone(), 1);
        assert!(!instr.config().enable_htm && !instr.config().enable_swopt);
        let all = Variant::AdaptiveAll.build_ale(p, 1);
        assert_eq!(all.policy_name(), "Adaptive");
    }

    #[test]
    fn figure_set_tracks_htm_availability() {
        let with = Variant::figure_set(&Platform::haswell());
        assert!(with.contains(&Variant::StaticHl(5)));
        let without = Variant::figure_set(&Platform::t2());
        assert!(!without.iter().any(|v| matches!(v, Variant::StaticHl(_))));
        assert!(without.contains(&Variant::AdaptiveSl));
    }

    #[test]
    #[should_panic(expected = "no ALE instance")]
    fn uninstrumented_has_no_ale() {
        let _ = Variant::Uninstrumented.build_ale(Platform::testbed(), 1);
    }
}
