//! Cross-PR benchmark shape-regression gate.
//!
//! ```text
//! bench_gate <baseline.json> <current.json>
//! ```
//!
//! Flattens both trajectory documents (`BENCH_<n>.json`) to their numeric
//! leaves and compares every *gated* leaf that exists in the baseline:
//!
//! * throughput leaves — key ends in `mops` or contains `speedup` —
//!   regress when the current value drops more than 10 % below baseline;
//! * cost leaves — key ends in `ratio` or `per_cs_ns` — regress when the
//!   current value rises more than 10 % above baseline.
//!
//! Leaves that are new in the current file pass (a PR may add cells);
//! gated baseline leaves missing from the current file fail (a PR must
//! not silently drop a cell). Counters and identifiers (`threads`,
//! `seed`, `trips`, `total_ops`, …) are informational and not gated.
//!
//! Exit status 0 = no regression, 1 = regression (CI fails the job).

use std::process::ExitCode;

/// The 10 % shape tolerance, as a fraction.
const TOLERANCE: f64 = 0.10;

// ---------------------------------------------------------------------
// A minimal JSON reader: just enough to flatten numeric leaves. The
// trajectory emits its own JSON (no serde in the workspace), so the gate
// reads it the same way.
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) => out.push(b as char),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected literal {lit} at byte {}", self.pos))
        }
    }

    /// Parse one value, appending any numeric leaves under `path` into
    /// `out` as `(dotted.path, value)`.
    fn value(&mut self, path: &str, out: &mut Vec<(String, f64)>) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(());
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    let sub = if path.is_empty() {
                        key
                    } else {
                        format!("{path}.{key}")
                    };
                    self.value(&sub, out)?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => self.skip_ws(),
                        Some(b'}') => return Ok(()),
                        got => return Err(format!("expected ',' or '}}', got {got:?}")),
                    }
                }
            }
            Some(b'[') => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(());
                }
                let mut idx = 0usize;
                loop {
                    self.value(&format!("{path}[{idx}]"), out)?;
                    idx += 1;
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => self.skip_ws(),
                        Some(b']') => return Ok(()),
                        got => return Err(format!("expected ',' or ']', got {got:?}")),
                    }
                }
            }
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                let num: f64 = text
                    .parse()
                    .map_err(|e| format!("bad number {text:?}: {e}"))?;
                out.push((path.to_string(), num));
                Ok(())
            }
            got => Err(format!("unexpected byte {got:?} at {}", self.pos)),
        }
    }
}

/// Flatten a JSON document to its numeric leaves.
fn numeric_leaves(doc: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let mut r = Reader::new(doc);
    r.value("", &mut out)?;
    r.skip_ws();
    if r.peek().is_some() {
        return Err(format!("trailing garbage at byte {}", r.pos));
    }
    Ok(out)
}

/// Which direction (if any) a leaf is gated in.
#[derive(Debug, PartialEq, Clone, Copy)]
enum Gate {
    HigherBetter,
    LowerBetter,
    Ungated,
}

fn gate_for(path: &str) -> Gate {
    let leaf = path
        .rsplit('.')
        .next()
        .unwrap_or(path)
        .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit() || c == '[');
    if leaf.ends_with("mops") || leaf.contains("speedup") {
        Gate::HigherBetter
    } else if leaf.ends_with("ratio") || leaf.ends_with("per_cs_ns") {
        Gate::LowerBetter
    } else {
        Gate::Ungated
    }
}

/// Compare baseline → current. Returns human-readable regression lines.
fn regressions(baseline: &[(String, f64)], current: &[(String, f64)]) -> Vec<String> {
    let cur: std::collections::BTreeMap<&str, f64> =
        current.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut bad = Vec::new();
    for (path, base) in baseline {
        let gate = gate_for(path);
        if gate == Gate::Ungated {
            continue;
        }
        let Some(&now) = cur.get(path.as_str()) else {
            bad.push(format!(
                "{path}: gated cell present in baseline but missing"
            ));
            continue;
        };
        if *base == 0.0 {
            continue;
        }
        let rel = (now - base) / base.abs();
        let regressed = match gate {
            Gate::HigherBetter => rel < -TOLERANCE,
            Gate::LowerBetter => rel > TOLERANCE,
            Gate::Ungated => false,
        };
        if regressed {
            bad.push(format!(
                "{path}: {base} -> {now} ({:+.1} %, tolerance ±{:.0} %)",
                rel * 100.0,
                TOLERANCE * 100.0
            ));
        }
    }
    bad
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(base_path), Some(cur_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <baseline.json> <current.json>");
        return ExitCode::from(2);
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("bench_gate: read {p}: {e}"))
    };
    let base = numeric_leaves(&read(&base_path))
        .unwrap_or_else(|e| panic!("bench_gate: parse {base_path}: {e}"));
    let cur = numeric_leaves(&read(&cur_path))
        .unwrap_or_else(|e| panic!("bench_gate: parse {cur_path}: {e}"));
    let gated = base
        .iter()
        .filter(|(k, _)| gate_for(k) != Gate::Ungated)
        .count();
    let bad = regressions(&base, &cur);
    if bad.is_empty() {
        eprintln!(
            "bench_gate: OK — {gated} gated cell(s) of {} within ±{:.0} % of {base_path}",
            base.len(),
            TOLERANCE * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: FAIL — {} regression(s) vs {base_path}:",
            bad.len()
        );
        for line in &bad {
            eprintln!("  {line}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
      "seed": 42,
      "fig2_cell": { "threads": 8, "mops": 36.1054, "makespan_ns": 1329442 },
      "sharded": { "cells": [ { "shards": 8, "mops": 8.0 } ],
                   "zipf_speedup_8shard_vs_single": 1.9 },
      "durability": { "overhead_ratio": 1.185 },
      "per_cs_overhead": { "cells": [ { "threads": 1, "adaptive_per_cs_ns": 36.29,
                                        "ratio": 1.81 } ] }
    }"#;

    #[test]
    fn flattens_numeric_leaves_with_paths() {
        let leaves = numeric_leaves(BASE).unwrap();
        let get = |k: &str| leaves.iter().find(|(p, _)| p == k).map(|(_, v)| *v);
        assert_eq!(get("fig2_cell.mops"), Some(36.1054));
        assert_eq!(get("sharded.cells[0].mops"), Some(8.0));
        assert_eq!(get("per_cs_overhead.cells[0].ratio"), Some(1.81));
        assert_eq!(get("seed"), Some(42.0));
    }

    #[test]
    fn directions_assigned_by_leaf_name() {
        assert_eq!(gate_for("fig2_cell.mops"), Gate::HigherBetter);
        assert_eq!(
            gate_for("sharded.zipf_speedup_8shard_vs_single"),
            Gate::HigherBetter
        );
        assert_eq!(gate_for("durability.overhead_ratio"), Gate::LowerBetter);
        assert_eq!(
            gate_for("per_cs_overhead.cells[0].adaptive_per_cs_ns"),
            Gate::LowerBetter
        );
        assert_eq!(gate_for("fig2_cell.makespan_ns"), Gate::Ungated);
        assert_eq!(gate_for("seed"), Gate::Ungated);
    }

    #[test]
    fn identical_documents_pass() {
        let leaves = numeric_leaves(BASE).unwrap();
        assert!(regressions(&leaves, &leaves).is_empty());
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let cur = BASE.replace("\"mops\": 36.1054", "\"mops\": 30.0");
        let bad = regressions(
            &numeric_leaves(BASE).unwrap(),
            &numeric_leaves(&cur).unwrap(),
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].starts_with("fig2_cell.mops"));
    }

    #[test]
    fn cost_rise_beyond_tolerance_fails_and_small_drift_passes() {
        let worse = BASE.replace("\"overhead_ratio\": 1.185", "\"overhead_ratio\": 1.40");
        let bad = regressions(
            &numeric_leaves(BASE).unwrap(),
            &numeric_leaves(&worse).unwrap(),
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].starts_with("durability.overhead_ratio"));

        let drift = BASE.replace("\"mops\": 36.1054", "\"mops\": 34.0");
        assert!(regressions(
            &numeric_leaves(BASE).unwrap(),
            &numeric_leaves(&drift).unwrap()
        )
        .is_empty());
    }

    #[test]
    fn missing_gated_cell_fails_and_new_cells_pass() {
        let shrunk = r#"{ "fig2_cell": { "mops": 36.1054 } }"#;
        let bad = regressions(
            &numeric_leaves(BASE).unwrap(),
            &numeric_leaves(shrunk).unwrap(),
        );
        assert!(bad.iter().any(|l| l.contains("overhead_ratio")), "{bad:?}");

        let grown = BASE.replace(
            "\"seed\": 42,",
            "\"seed\": 42, \"extra\": { \"mops\": 1.0 },",
        );
        assert!(regressions(
            &numeric_leaves(BASE).unwrap(),
            &numeric_leaves(&grown).unwrap()
        )
        .is_empty());
    }
}
