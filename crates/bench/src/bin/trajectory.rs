//! Pinned per-PR benchmark trajectory (ROADMAP item 5).
//!
//! ```text
//! trajectory [--quick] [--seed N] [--out FILE]
//! ```
//!
//! Runs a small, fixed suite and emits one JSON document:
//!
//! * one **fig2 cell** — the HashMap read-heavy mix on Haswell under
//!   `Adaptive-All` (the headline configuration of the paper's Figure 2);
//! * the **storm-recovery** scenario — breaker trips/restores and per-phase
//!   throughput through an injected abort storm;
//! * the **durability overhead** — the Kyoto `wicked` workload against the
//!   same CacheDB with the WAL off (`AleCacheDb`) and on
//!   (`DurableCacheDb`), identical op streams, plus a recovery pass that
//!   must reproduce the live database;
//! * the **per-CS overhead** — empty critical sections through the full
//!   adaptive entry/exit against a modeled raw `std::sync::Mutex` fast
//!   path, uncontended and 8-thread contended, with an in-binary gate on
//!   the uncontended ratio.
//!
//! The output is committed as `BENCH_<n>.json` at the repo root, one file
//! per PR, so the numbers form a trajectory reviewers can diff. Everything
//! runs under the virtual-time simulator: results are deterministic for a
//! fixed `(--seed, --quick)` pair, so a regenerated file that differs from
//! the committed one is a real behaviour change, not noise.

use std::sync::Arc;

use ale_bench::harness::{run_hashmap, run_sharded, HashMapWorkload, BENCH_SLACK_NS};
use ale_bench::{run_storm, StormConfig, Variant};
use ale_core::{scope, Ale, AleConfig, CsOptions, StatSink, StaticPolicy};
use ale_kyoto::{
    prefill, recover, wicked_op, AleCacheDb, DbConfig, DurableCacheDb, KyotoDb, Wal, WickedConfig,
    WickedStats, RECORD_BYTES,
};
use ale_sync::SpinLock;
use ale_vtime::{Platform, Sim};

struct Opts {
    quick: bool,
    seed: u64,
    out: Option<std::path::PathBuf>,
}

/// One wicked run's outcome, WAL on or off.
struct WickedRun {
    makespan_ns: u64,
    mops: f64,
    total_ops: u64,
}

/// Run the `wicked` workload against `db` under the simulator. The op
/// stream depends only on `(threads, ops_per_lane, seed)` — never on the
/// database flavour — so WAL-on and WAL-off runs are directly comparable.
fn run_wicked(
    db: &dyn KyotoDb,
    platform: &Platform,
    threads: usize,
    cfg: &WickedConfig,
    ops_per_lane: u64,
    seed: u64,
) -> WickedRun {
    prefill(db, cfg, seed);
    let report = Sim::new(platform.clone(), threads)
        .with_seed(seed ^ 0xBEEF)
        .with_slack(BENCH_SLACK_NS)
        .run(|lane| {
            let mut rng = lane.rng().clone();
            let mut stats = WickedStats::default();
            for _ in 0..ops_per_lane {
                wicked_op(db, cfg, &mut rng, &mut stats);
            }
            stats
        });
    let total_ops = ops_per_lane * threads as u64;
    WickedRun {
        makespan_ns: report.makespan_ns,
        mops: report.throughput(total_ops) / 1e6,
        total_ops,
    }
}

fn ale_for(platform: &Platform, seed: u64) -> Arc<Ale> {
    Ale::new(
        AleConfig::new(platform.clone()).with_seed(seed),
        StaticPolicy::new(3, 8),
    )
}

/// WAL-off vs WAL-on comparison plus the recovery check, as JSON.
fn durability_section(opts: &Opts) -> String {
    let platform = Platform::haswell();
    let threads = 4;
    let ops_per_lane: u64 = if opts.quick { 1_200 } else { 4_000 };
    let cfg = WickedConfig {
        key_space: 4 * 1024,
        count_permille: 0,
        ..Default::default()
    };
    let db_cfg = DbConfig {
        buckets_per_slot: 256,
        capacity_per_slot: 8 * 1024,
        payload_cells: 0,
    };

    let off_ale = ale_for(&platform, opts.seed);
    let off_db = AleCacheDb::new(&off_ale, db_cfg.clone());
    let off = run_wicked(&off_db, &platform, threads, &cfg, ops_per_lane, opts.seed);

    let on_ale = ale_for(&platform, opts.seed);
    let wal = Arc::new(Wal::new());
    let on_db = DurableCacheDb::new(&on_ale, db_cfg.clone(), Arc::clone(&wal));
    let on = run_wicked(&on_db, &platform, threads, &cfg, ops_per_lane, opts.seed);

    // Recovery must rebuild exactly the live database from the log alone.
    let rec_ale = ale_for(&platform, opts.seed ^ 0xD15C);
    let (rdb, report) = recover(&rec_ale, db_cfg, Arc::clone(&wal));
    assert!(report.gapless, "crash-free log must be gapless");
    assert_eq!(report.truncated, 0, "crash-free log must not be truncated");
    let live_count = on_db.count();
    let recovered_count = rdb.count();
    assert_eq!(
        recovered_count, live_count,
        "recovery diverged from live db"
    );

    let overhead = on.makespan_ns as f64 / off.makespan_ns as f64;
    eprintln!(
        "  durability: wal-off {:.3} Mops/s, wal-on {:.3} Mops/s, overhead x{overhead:.3}, \
         {} records recovered",
        off.mops, on.mops, report.applied
    );
    format!(
        concat!(
            "{{\n",
            "    \"workload\": \"wicked\",\n",
            "    \"platform\": \"haswell\",\n",
            "    \"threads\": {},\n",
            "    \"total_ops\": {},\n",
            "    \"wal_off\": {{ \"makespan_ns\": {}, \"mops\": {:.4} }},\n",
            "    \"wal_on\": {{ \"makespan_ns\": {}, \"mops\": {:.4}, \"wal_records\": {}, \"wal_bytes\": {} }},\n",
            "    \"overhead_ratio\": {:.4},\n",
            "    \"recovery\": {{ \"applied\": {}, \"ignored\": {}, \"gapless\": {}, \"count_matches_live\": {} }}\n",
            "  }}"
        ),
        threads,
        on.total_ops,
        off.makespan_ns,
        off.mops,
        on.makespan_ns,
        on.mops,
        wal.len() / RECORD_BYTES,
        wal.len(),
        overhead,
        report.applied,
        report.ignored,
        report.gapless,
        recovered_count == live_count,
    )
}

fn fig2_cell_section(opts: &Opts) -> String {
    let (ops, warmup) = if opts.quick {
        (1_500, 200)
    } else {
        (6_000, 600)
    };
    let r = run_hashmap(
        Platform::haswell(),
        Variant::AdaptiveAll,
        8,
        &HashMapWorkload::read_heavy(16 * 1024),
        ops,
        warmup,
        opts.seed,
    );
    eprintln!(
        "  fig2 cell: {} {} t={}: {:.3} Mops/s",
        r.platform, r.variant, r.threads, r.mops
    );
    format!(
        concat!(
            "{{\n",
            "    \"platform\": \"{}\",\n",
            "    \"variant\": \"{}\",\n",
            "    \"mix\": \"2i/2r/96g\",\n",
            "    \"threads\": {},\n",
            "    \"total_ops\": {},\n",
            "    \"makespan_ns\": {},\n",
            "    \"mops\": {:.4}\n",
            "  }}"
        ),
        r.platform, r.variant, r.threads, r.total_ops, r.makespan_ns, r.mops
    )
}

/// Sharded vs single-lock cell: the mutate-heavy mix at 1/4/8 shards,
/// uniform and Zipf(1.1) keys, under the software-elision configuration
/// (SWOpt + Lock, HTM off — the same focus as ale-check's shard
/// workload; on Haswell the adaptive policy sends nearly everything to
/// HTM, where neither the global version word nor the global lock is
/// ever contended, so the paths sharding improves would not execute).
///
/// The initial table is deliberately undersized (512 buckets for a 16 K
/// key space), which is exactly the situation the new subsystem exists
/// for: the sharded map's incremental resize grows each shard out of the
/// long chains, its per-shard locks confine Lock-mode serialisation, and
/// its per-shard version words confine SWOpt invalidation — while the
/// fixed-size single-lock `AleHashMap` can do none of the three. The
/// committed shape gate: under Zipf(1.1) skew the 8-shard map must beat
/// the single-lock map.
fn sharded_section(opts: &Opts) -> String {
    let threads = 8;
    let (ops, warmup) = if opts.quick {
        (1_500, 200)
    } else {
        (6_000, 600)
    };
    let mut cells = Vec::new();
    let mut gate: Option<(f64, f64)> = None;
    for (skew, zipf) in [("uniform", None), ("zipf-1.1", Some(1.1))] {
        let mut w = HashMapWorkload::mutate_heavy(16 * 1024).with_buckets(512);
        if let Some(theta) = zipf {
            w = w.with_zipf(theta);
        }
        let single = run_hashmap(
            Platform::haswell(),
            Variant::StaticAll(0, 6),
            threads,
            &w,
            ops,
            warmup,
            opts.seed,
        );
        eprintln!(
            "  sharded cell: {skew} single-lock: {:.3} Mops/s",
            single.mops
        );
        cells.push(format!(
            "{{ \"variant\": \"{}\", \"skew\": \"{skew}\", \"shards\": 0, \
             \"makespan_ns\": {}, \"mops\": {:.4} }}",
            single.variant, single.makespan_ns, single.mops
        ));
        let mut mops8 = 0.0;
        for shards in [1usize, 4, 8] {
            let r = run_sharded(
                Platform::haswell(),
                Variant::StaticAll(0, 6),
                threads,
                shards,
                &w,
                ops,
                warmup,
                opts.seed,
            );
            eprintln!(
                "  sharded cell: {skew} {} shard(s): {:.3} Mops/s",
                shards, r.mops
            );
            cells.push(format!(
                "{{ \"variant\": \"{}\", \"skew\": \"{skew}\", \"shards\": {shards}, \
                 \"makespan_ns\": {}, \"mops\": {:.4} }}",
                r.variant, r.makespan_ns, r.mops
            ));
            if shards == 8 {
                mops8 = r.mops;
            }
        }
        if zipf.is_some() {
            gate = Some((mops8, single.mops));
        }
    }
    let (mops8, single_mops) = gate.expect("zipf leg always runs");
    assert!(
        mops8 > single_mops,
        "shape gate: 8-shard map ({mops8:.4} Mops/s) must beat the single-lock \
         map ({single_mops:.4} Mops/s) under Zipf(1.1) at {threads} lanes"
    );
    format!(
        concat!(
            "{{\n",
            "    \"platform\": \"haswell\",\n",
            "    \"mix\": \"20i/20r/60g\",\n",
            "    \"threads\": {},\n",
            "    \"cells\": [\n",
            "      {}\n",
            "    ],\n",
            "    \"zipf_speedup_8shard_vs_single\": {:.4}\n",
            "  }}"
        ),
        threads,
        cells.join(",\n      "),
        mops8 / single_mops,
    )
}

fn storm_section(opts: &Opts) -> String {
    let r = run_storm(&StormConfig::quick(Platform::haswell(), 4, true, opts.seed));
    eprintln!(
        "  storm: pre {:.3} / storm {:.3} / post {:.3} Mops/s, {} trips, {} restores",
        r.pre_mops, r.storm_mops, r.post_mops, r.trips, r.restores
    );
    format!(
        concat!(
            "{{\n",
            "    \"threads\": 4,\n",
            "    \"breaker\": true,\n",
            "    \"pre_mops\": {:.4},\n",
            "    \"storm_mops\": {:.4},\n",
            "    \"post_mops\": {:.4},\n",
            "    \"trips\": {},\n",
            "    \"restores\": {},\n",
            "    \"post_htm_ops\": {}\n",
            "  }}"
        ),
        r.pre_mops, r.storm_mops, r.post_mops, r.trips, r.restores, r.post_htm_ops
    )
}

/// Per-critical-section overhead cell: empty critical sections through the
/// full adaptive entry/exit (granule lookup, cached plan word, HTM
/// attempt, stat sink, trace gate) against the same op count on a modeled
/// raw `std::sync::Mutex` fast path — the uncontended futex path, which
/// on Linux is two atomic RMWs: `lock()` is a `compare_exchange` on the
/// futex word and `unlock()` is an atomic `swap` (it must observe
/// waiters, so it cannot be a plain store). Both sides run under the
/// virtual-time simulator on the no-noise testbed platform, so the
/// committed numbers are deterministic: a regressed fast path moves this
/// cell, noise cannot.
///
/// The simulator normally prices statistics with the per-event Direct sink
/// (kept solely so pinned ale-check digests stay bit-identical); the
/// shipped fast path batches them into a stack-local delta. This cell
/// measures what ships, so it opts the simulator into the batched sink for
/// its duration ([`StatSink::force_batched`]) and restores the default
/// before the next section.
///
/// In-binary shape gate (mirrors the sharded cell's): adaptive uncontended
/// entry/exit must stay ≤ 2.0× the raw-mutex model.
fn per_cs_overhead_section(opts: &Opts) -> String {
    let platform = Platform::testbed();
    let ops: u64 = if opts.quick { 2_000 } else { 10_000 };
    StatSink::force_batched(true);
    let mut cells = Vec::new();
    let mut uncontended_ratio = f64::NAN;
    for threads in [1usize, 8] {
        let ale = ale_for(&platform, opts.seed);
        let lock = ale.new_lock("per_cs_overhead", SpinLock::new());
        let adaptive = Sim::new(platform.clone(), threads)
            .with_seed(opts.seed)
            .with_slack(BENCH_SLACK_NS)
            .run(|_lane| {
                for _ in 0..ops {
                    lock.cs_plain(scope!("bench::per_cs"), CsOptions::new(), |_| {});
                }
            });
        let raw = Sim::new(platform.clone(), threads)
            .with_seed(opts.seed)
            .with_slack(BENCH_SLACK_NS)
            .run(|_lane| {
                for _ in 0..ops {
                    // The uncontended futex fast path: lock cmpxchg, then a
                    // release swap (the unlock RMW that checks for waiters).
                    ale_vtime::tick(ale_vtime::Event::Cas);
                    ale_vtime::tick(ale_vtime::Event::Cas);
                }
            });
        let adaptive_ns = adaptive.makespan_ns as f64 / ops as f64;
        let raw_ns = raw.makespan_ns as f64 / ops as f64;
        let ratio = adaptive_ns / raw_ns;
        if threads == 1 {
            uncontended_ratio = ratio;
        }
        eprintln!(
            "  per-CS overhead: t={threads}: adaptive {adaptive_ns:.1} ns vs raw mutex \
             {raw_ns:.1} ns ({ratio:.3}x)"
        );
        cells.push(format!(
            "{{ \"threads\": {threads}, \"adaptive_per_cs_ns\": {adaptive_ns:.2}, \
             \"raw_mutex_per_cs_ns\": {raw_ns:.2}, \"ratio\": {ratio:.4} }}"
        ));
    }
    StatSink::force_batched(false);
    assert!(
        uncontended_ratio <= 2.0,
        "shape gate: adaptive uncontended entry/exit ({uncontended_ratio:.4}x) must stay \
         within 2.0x of the raw std::sync::Mutex model"
    );
    format!(
        concat!(
            "{{\n",
            "    \"platform\": \"testbed\",\n",
            "    \"ops_per_lane\": {},\n",
            "    \"cells\": [\n",
            "      {}\n",
            "    ],\n",
            "    \"uncontended_ratio\": {:.4}\n",
            "  }}"
        ),
        ops,
        cells.join(",\n      "),
        uncontended_ratio,
    )
}

fn main() {
    let mut opts = Opts {
        quick: false,
        seed: 42,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--out" => {
                opts.out = Some(std::path::PathBuf::from(
                    args.next().expect("--out needs a file path"),
                ))
            }
            "--help" | "-h" => {
                eprintln!("usage: trajectory [--quick] [--seed N] [--out FILE]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    eprintln!(
        "trajectory: seed {} ({})",
        opts.seed,
        if opts.quick { "quick" } else { "full" }
    );
    let fig2 = fig2_cell_section(&opts);
    let sharded = sharded_section(&opts);
    let storm = storm_section(&opts);
    let durability = durability_section(&opts);
    let per_cs = per_cs_overhead_section(&opts);

    let json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"ale-bench trajectory\",\n",
            "  \"seed\": {},\n",
            "  \"quick\": {},\n",
            "  \"fig2_cell\": {},\n",
            "  \"sharded\": {},\n",
            "  \"storm_recovery\": {},\n",
            "  \"durability\": {},\n",
            "  \"per_cs_overhead\": {}\n",
            "}}\n"
        ),
        opts.seed, opts.quick, fig2, sharded, storm, durability, per_cs
    );
    print!("{json}");
    if let Some(path) = &opts.out {
        std::fs::write(path, &json).expect("write --out file");
        eprintln!("trajectory: wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The WAL-on and WAL-off runs consume identical op streams, and the
    /// durable run can never be *faster*: every mutation pays a simulated
    /// fsync before the ack.
    #[test]
    fn wal_overhead_is_deterministic_and_nonnegative() {
        let platform = Platform::testbed();
        let cfg = WickedConfig {
            key_space: 512,
            count_permille: 0,
            ..Default::default()
        };
        let db_cfg = DbConfig {
            buckets_per_slot: 64,
            capacity_per_slot: 2048,
            payload_cells: 0,
        };
        let run_off = || {
            let ale = ale_for(&platform, 7);
            let db = AleCacheDb::new(&ale, db_cfg.clone());
            run_wicked(&db, &platform, 2, &cfg, 300, 7)
        };
        let run_on = || {
            let ale = ale_for(&platform, 7);
            let db = DurableCacheDb::new(&ale, db_cfg.clone(), Arc::new(Wal::new()));
            run_wicked(&db, &platform, 2, &cfg, 300, 7)
        };
        let (off_a, off_b) = (run_off(), run_off());
        let (on_a, on_b) = (run_on(), run_on());
        assert_eq!(off_a.makespan_ns, off_b.makespan_ns);
        assert_eq!(on_a.makespan_ns, on_b.makespan_ns);
        assert!(
            on_a.makespan_ns >= off_a.makespan_ns,
            "durable run cannot be faster: on {} vs off {}",
            on_a.makespan_ns,
            off_a.makespan_ns
        );
    }
}
