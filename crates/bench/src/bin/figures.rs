//! Regenerate the paper's figures and statistics.
//!
//! ```text
//! figures [targets…] [--quick] [--out DIR] [--seed N]
//!
//! targets: all (default) | fig2 | fig3 | fig4 | fig5 | stats-nomutate |
//!          report | ablate-elide | ablate-group | ablate-buckets | ablate-x
//! ```
//!
//! Each target prints its table and writes `results/<id>.csv`
//! (plus `results/report_demo.txt` for the §3.4 report).

use std::path::PathBuf;

use ale_bench::figures::{self, FigOpts, Table};

fn main() {
    let mut targets: Vec<String> = Vec::new();
    let mut opts = FigOpts::default();
    let mut out_dir = PathBuf::from("results");

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a directory")),
            "--seed" => {
                opts.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [all|fig2|fig3|fig4|fig5|stats-nomutate|report|\
                     ablate-elide|ablate-group|ablate-buckets|ablate-x]… [--quick] [--out DIR] [--seed N]"
                );
                return;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "stats-nomutate",
            "report",
            "ablate-elide",
            "ablate-group",
            "ablate-buckets",
            "ablate-x",
            "zipf",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let emit = |table: &Table| {
        let path = table.write_csv(&out_dir).expect("write CSV");
        println!("{}", table.render());
        println!("(written to {})", path.display());
        if let Some(p) = table.write_prom(&out_dir).expect("write metrics snapshot") {
            println!("(metrics snapshot written to {})", p.display());
        }
        println!();
    };

    for target in &targets {
        let t0 = std::time::Instant::now();
        eprintln!(
            "=== {target} ({} mode) ===",
            if opts.quick { "quick" } else { "full" }
        );
        match target.as_str() {
            "fig2" => emit(&figures::fig2(opts)),
            "fig3" => emit(&figures::fig3(opts)),
            "fig4" => emit(&figures::fig4(opts)),
            "fig5" => emit(&figures::fig5(opts)),
            "stats-nomutate" => emit(&figures::stats_nomutate(opts)),
            "report" => {
                let (table, text) = figures::report_demo(opts);
                emit(&table);
                std::fs::create_dir_all(&out_dir).expect("results dir");
                let p = out_dir.join("report_demo.txt");
                std::fs::write(&p, &text).expect("write report text");
                println!("{text}");
                println!("(full report written to {})\n", p.display());
            }
            "ablate-elide" => emit(&figures::ablate_elide(opts)),
            "ablate-group" => emit(&figures::ablate_group(opts)),
            "ablate-buckets" => emit(&figures::ablate_buckets(opts)),
            "ablate-x" => emit(&figures::ablate_x(opts)),
            "zipf" => emit(&figures::zipf(opts)),
            other => {
                eprintln!("unknown target `{other}` (try --help)");
                std::process::exit(2);
            }
        }
        eprintln!("=== {target} done in {:?} ===\n", t0.elapsed());
    }
}
