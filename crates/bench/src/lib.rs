//! # ale-bench — the evaluation harness (§5)
//!
//! Regenerates every figure and inline statistic of the paper's evaluation
//! under the deterministic virtual-time simulator:
//!
//! * [`variant::Variant`] — the policy/technique configurations the paper
//!   names in its figures (`Uninstrumented`, `Instrumented`,
//!   `Static-HL-x`, `Static-SL`, `Static-All-x:y`, `Adaptive-…`);
//! * [`harness`] — runners that execute the HashMap microbenchmark and the
//!   Kyoto `wicked` benchmark for a (platform, variant, thread-count)
//!   triple and report virtual-time throughput;
//! * [`figures`] — one function per figure/ablation, emitting CSV + a
//!   human-readable table (the `figures` binary drives these).
//!
//! Results land in `results/*.csv`; EXPERIMENTS.md records the
//! paper-vs-measured comparison.

pub mod figures;
pub mod harness;
pub mod storm;
pub mod variant;

pub use harness::run_hashmap_mods;
pub use harness::{run_hashmap, run_kyoto, HashMapWorkload, RunResult};
pub use storm::{run_storm, StormConfig, StormResult};
pub use variant::{Mods, Variant};
