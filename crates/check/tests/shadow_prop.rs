//! Property tests pinning each sequential shadow model against a naive,
//! independently-written reference under random operation sequences.
//!
//! The scenario workloads trust the shadows as their source of truth, so
//! a bug in a shadow silently weakens a concurrency oracle. Each test
//! here re-implements the model's contract in the most obvious way
//! possible (std collections, linear scans) and checks observation-level
//! agreement op for op, plus final-state agreement.

use std::collections::{HashMap, VecDeque};

use ale_check::workloads::shadow::{
    BalanceShadow, KvOp, KvShadow, QueueOp, QueueShadow, ShadowModel, TransferOp, TtlOp, TtlShadow,
};
use proptest::prelude::*;

/// Slot space used by the per-lane shadows (mirrors CHURN_PER_LANE).
const SLOTS: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// KvShadow agrees with a plain HashMap on presence transitions and
    /// final contents.
    #[test]
    fn kv_shadow_matches_hashmap(
        script in proptest::collection::vec((0usize..SLOTS, any::<u64>(), any::<bool>()), 0..80),
    ) {
        let mut shadow = KvShadow::new();
        let mut reference: HashMap<usize, u64> = HashMap::new();
        for (slot, value, insert) in script {
            let op = if insert {
                KvOp::Insert { slot, value }
            } else {
                KvOp::Remove { slot }
            };
            let got = shadow.apply(&op);
            let want = if insert {
                reference.insert(slot, value).is_none()
            } else {
                reference.remove(&slot).is_some()
            };
            prop_assert_eq!(got, want, "presence transition diverged on {:?}", op);
        }
        for slot in 0..SLOTS {
            prop_assert_eq!(shadow.present[slot], reference.contains_key(&slot));
            if let Some(&val) = reference.get(&slot) {
                prop_assert_eq!(shadow.value[slot], val);
            }
        }
    }

    /// TtlShadow agrees with a HashMap of (value, expiry) pairs: fills,
    /// unconditional evictions, expiry sweeps, and freshness-checked gets.
    #[test]
    fn ttl_shadow_matches_reference(
        script in proptest::collection::vec(
            (0u8..4, 0usize..SLOTS, any::<u64>(), 0u64..1_000),
            0..100,
        ),
    ) {
        let mut shadow = TtlShadow::new();
        let mut reference: HashMap<usize, (u64, u64)> = HashMap::new();
        for (kind, slot, value, now) in script {
            let (op, want) = match kind {
                0 => {
                    let expiry = now; // any u64 works; reuse the draw
                    let want = reference.insert(slot, (value, expiry)).is_none() as u64;
                    (TtlOp::Fill { slot, value, expiry }, Some(want))
                }
                1 => {
                    let want = reference.remove(&slot).is_some() as u64;
                    (TtlOp::Evict { slot }, Some(want))
                }
                2 => {
                    let before = reference.len();
                    reference.retain(|_, &mut (_, expiry)| expiry > now);
                    (TtlOp::Sweep { now }, Some((before - reference.len()) as u64))
                }
                _ => {
                    let want = reference
                        .get(&slot)
                        .and_then(|&(val, expiry)| (expiry > now).then_some(val));
                    (TtlOp::Get { slot, now }, want)
                }
            };
            let got = shadow.apply(&op);
            prop_assert_eq!(got, want, "diverged on {:?}", op);
        }
        for slot in 0..SLOTS {
            prop_assert_eq!(shadow.present[slot], reference.contains_key(&slot));
            if let Some(&(val, expiry)) = reference.get(&slot) {
                prop_assert_eq!(shadow.value[slot], val);
                prop_assert_eq!(shadow.expiry[slot], expiry);
            }
        }
    }

    /// QueueShadow is a bounded FIFO: agrees with a VecDeque that rejects
    /// pushes past the capacity.
    #[test]
    fn queue_shadow_matches_deque(
        cap in 1usize..10,
        script in proptest::collection::vec((0u8..3, any::<u64>()), 0..120),
    ) {
        let mut shadow = QueueShadow::new(cap);
        let mut reference: VecDeque<u64> = VecDeque::new();
        for (kind, item) in script {
            let (op, want) = match kind {
                0 => {
                    let accept = reference.len() < cap;
                    if accept {
                        reference.push_back(item);
                    }
                    (QueueOp::Enqueue(item), Some(accept as u64))
                }
                1 => (QueueOp::Dequeue, reference.pop_front()),
                _ => (QueueOp::Len, Some(reference.len() as u64)),
            };
            let got = shadow.apply(&op);
            prop_assert_eq!(got, want, "diverged on {:?}", op);
        }
        prop_assert_eq!(shadow.len(), reference.len());
        prop_assert_eq!(shadow.is_empty(), reference.is_empty());
        while let Some(want) = reference.pop_front() {
            prop_assert_eq!(shadow.dequeue(), Some(want), "drain order diverged");
        }
        prop_assert!(shadow.is_empty());
    }

    /// BalanceShadow conserves the total and matches a naive reference on
    /// acceptance and per-account balances.
    #[test]
    fn balance_shadow_conserves_and_matches(
        accounts in 3usize..12,
        initial in 0u64..2_000,
        script in proptest::collection::vec(
            (any::<usize>(), any::<usize>(), any::<usize>(), 0u64..50),
            0..100,
        ),
    ) {
        let mut shadow = BalanceShadow::new(accounts, initial);
        let mut reference = vec![initial; accounts];
        let total: u64 = initial * accounts as u64;
        for (a, b, c, amount) in script {
            let (a, b, c) = (a % accounts, b % accounts, c % accounts);
            let op = TransferOp { a, b, c, amount };
            let want = a != b && b != c && a != c
                && reference[a] >= amount
                && reference[b] >= amount;
            if want {
                reference[a] -= amount;
                reference[b] -= amount;
                reference[c] += 2 * amount;
            }
            prop_assert_eq!(shadow.apply(&op), want, "acceptance diverged on {:?}", op);
            prop_assert_eq!(shadow.total(), total, "conservation broken by {:?}", op);
        }
        for (i, &want) in reference.iter().enumerate() {
            prop_assert_eq!(shadow.balance(i), want);
        }
    }
}
