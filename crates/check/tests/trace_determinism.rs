//! Satellite: the trace stream is part of the deterministic replay surface.
//!
//! Running the same workload under the same seeds with tracing on must
//! produce *byte-identical* merged JSONL and equal FNV stream digests —
//! that is the contract that lets ale-check treat the event stream as an
//! oracle surface, and lets a human diff two runs of a replay file.

use ale_check::{run_once, CheckConfig};

fn traced_config(seed: u64) -> CheckConfig {
    CheckConfig {
        ops: 80,
        seed,
        sched_seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        trace: true,
        ..CheckConfig::default()
    }
}

#[test]
fn same_seed_runs_produce_identical_trace_streams() {
    let cfg = traced_config(11);
    let a = run_once(&cfg);
    let b = run_once(&cfg);
    assert!(
        a.violations.is_empty(),
        "traced clean run must pass every oracle (incl. the trace oracle): {:?}",
        a.violations
    );
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.makespan_ns, b.makespan_ns, "schedule must replay");
    assert_eq!(a.decisions, b.decisions, "decision count must replay");

    let (ta, tb) = (a.trace.expect("trace on"), b.trace.expect("trace on"));
    assert!(
        !ta.events.is_empty(),
        "a traced hashmap run must record events"
    );
    assert_eq!(ta.dropped, 0, "the harness ring must be deep enough");
    assert_eq!(
        ta.digest(),
        tb.digest(),
        "same-seed trace streams must hash identically"
    );
    assert_eq!(
        ta.to_jsonl(),
        tb.to_jsonl(),
        "same-seed trace streams must render byte-identical JSONL"
    );
    assert_eq!(
        a.digest, b.digest,
        "run digests must replay bit-identically"
    );
}

#[test]
fn different_seeds_produce_different_trace_streams() {
    let a = run_once(&traced_config(3));
    let b = run_once(&traced_config(4));
    assert_ne!(
        a.trace.expect("trace on").digest(),
        b.trace.expect("trace on").digest(),
        "distinct seeds should explore distinct event streams"
    );
}

#[test]
fn trace_off_outcome_carries_no_stream() {
    let cfg = CheckConfig {
        ops: 40,
        ..CheckConfig::default()
    };
    assert!(run_once(&cfg).trace.is_none());
}
