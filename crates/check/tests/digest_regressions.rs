//! Satellite: seed-stable operation sampling is a regression surface.
//!
//! Each lane's RNG is derived from `seed ^ FNV(workload name) ^ lane`, so
//! the op sequence a given (workload, seed, lane) draws is pinned forever.
//! These digests fail if anyone perturbs the sampling — reordering
//! `gen_range` calls, changing an op mix, touching the sub-seed derivation
//! — which would silently invalidate every replay file in the wild.
//!
//! If a change *means* to alter schedules (new op kind, retuned mix),
//! re-bless by updating the constants with the values the failure prints.

use ale_check::{run_once, CheckConfig, StrategyKind, Workload};

/// The pinned scenario-pack digests: (workload, digest).
const PINNED: [(Workload, u64); 5] = [
    (Workload::Ttl, 0x3d81_8e01_8d31_02e7),
    (Workload::Queue, 0x5040_a4fe_9b4d_e6fa),
    (Workload::Transfer, 0xb359_61dc_7710_af9b),
    (Workload::Registry, 0xa9e3_1661_4319_f48b),
    (Workload::Nested, 0xe9c0_0a41_1c4a_500c),
];

fn pinned_config(workload: Workload) -> CheckConfig {
    CheckConfig {
        workload,
        strategy: StrategyKind::Reorder,
        threads: 4,
        ops: 200,
        seed: 1,
        sched_seed: 0x5EED,
        reorder_ns: 250,
        ..CheckConfig::default()
    }
}

#[test]
fn scenario_digests_are_pinned() {
    // BLESS=1 prints the constants to paste into PINNED instead of failing.
    let bless = std::env::var_os("BLESS").is_some();
    for (workload, want) in PINNED {
        let outcome = run_once(&pinned_config(workload));
        if bless {
            println!("    (Workload::{:?}, {:#018x}),", workload, outcome.digest);
            continue;
        }
        assert!(
            outcome.violations.is_empty(),
            "{}: pinned schedule must be clean: {:?}",
            workload.name(),
            outcome.violations
        );
        assert_eq!(
            outcome.digest,
            want,
            "{}: digest drifted to {:#018x} — op sampling or oracles changed; \
             re-bless only if the change is intentional",
            workload.name(),
            outcome.digest
        );
    }
}

#[test]
fn pinned_schedules_replay_bit_identically() {
    let cfg = pinned_config(Workload::Registry);
    let a = run_once(&cfg);
    let b = run_once(&cfg);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.makespan_ns, b.makespan_ns);
}
