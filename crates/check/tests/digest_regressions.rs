//! Satellite: seed-stable operation sampling is a regression surface.
//!
//! Each lane's RNG is derived from `seed ^ FNV(workload name) ^ lane`, so
//! the op sequence a given (workload, seed, lane) draws is pinned forever.
//! These digests fail if anyone perturbs the sampling — reordering
//! `gen_range` calls, changing an op mix, touching the sub-seed derivation
//! — which would silently invalidate every replay file in the wild.
//!
//! If a change *means* to alter schedules (new op kind, retuned mix),
//! re-bless by updating the constants with the values the failure prints.
//!
//! These digests hold in debug *and* release builds: nothing may tick the
//! virtual clock from inside a `debug_assert!` (see `HtmCell::try_peek`),
//! so both profiles simulate the same schedule. The original constants
//! were blessed in a debug build back when `SpinLock::release`'s
//! assertion ticked; the current ones are the profile-independent values.

use ale_check::{run_once, CheckConfig, StrategyKind, Workload};

/// The pinned scenario-pack digests: (workload, digest).
const PINNED: [(Workload, u64); 5] = [
    (Workload::Ttl, 0x8785_09cf_1f94_368f),
    (Workload::Queue, 0xe359_cb58_2a4c_5e41),
    (Workload::Transfer, 0xe536_2846_5b1a_13ef),
    (Workload::Registry, 0x1659_16f6_5014_8f81),
    (Workload::Nested, 0x72d3_1f37_9c94_41df),
];

/// The sharded-map workload pinned under *every* strategy: its op stream
/// feeds the shard router, the Zipf sampler, and the migration-step
/// driver, so a drift here also invalidates every `--workload shard`
/// replay file (including the `zipf_milli`/`shards` keys they carry).
const SHARD_PINNED: [(StrategyKind, u64); 5] = [
    (StrategyKind::LowestClock, 0x2578_e58d_a364_e8fa),
    (StrategyKind::RandomWalk, 0xd518_95d2_e380_c42c),
    (StrategyKind::Preempt, 0xa4f2_208d_0832_613b),
    (StrategyKind::MostConflicting, 0x21fb_057d_1356_f8a3),
    (StrategyKind::Reorder, 0x67e1_678c_27c6_7b93),
];

fn pinned_config(workload: Workload) -> CheckConfig {
    CheckConfig {
        workload,
        strategy: StrategyKind::Reorder,
        threads: 4,
        ops: 200,
        seed: 1,
        sched_seed: 0x5EED,
        reorder_ns: 250,
        ..CheckConfig::default()
    }
}

#[test]
fn scenario_digests_are_pinned() {
    // BLESS=1 prints the constants to paste into PINNED instead of failing.
    let bless = std::env::var_os("BLESS").is_some();
    for (workload, want) in PINNED {
        let outcome = run_once(&pinned_config(workload));
        if bless {
            println!("    (Workload::{:?}, {:#018x}),", workload, outcome.digest);
            continue;
        }
        assert!(
            outcome.violations.is_empty(),
            "{}: pinned schedule must be clean: {:?}",
            workload.name(),
            outcome.violations
        );
        assert_eq!(
            outcome.digest,
            want,
            "{}: digest drifted to {:#018x} — op sampling or oracles changed; \
             re-bless only if the change is intentional",
            workload.name(),
            outcome.digest
        );
    }
}

#[test]
fn shard_digests_are_pinned_across_all_strategies() {
    let bless = std::env::var_os("BLESS").is_some();
    for (strategy, want) in SHARD_PINNED {
        let cfg = CheckConfig {
            strategy,
            ..pinned_config(Workload::Shard)
        };
        let outcome = run_once(&cfg);
        if bless {
            println!(
                "    (StrategyKind::{:?}, {:#018x}),",
                strategy, outcome.digest
            );
            continue;
        }
        assert!(
            outcome.violations.is_empty(),
            "shard/{:?}: pinned schedule must be clean: {:?}",
            strategy,
            outcome.violations
        );
        assert_eq!(
            outcome.digest, want,
            "shard/{:?}: digest drifted to {:#018x} — op sampling, the Zipf \
             sampler, shard routing, or the oracles changed; re-bless only if \
             the change is intentional",
            strategy, outcome.digest
        );
    }
}

#[test]
fn pinned_schedules_replay_bit_identically() {
    let cfg = pinned_config(Workload::Registry);
    let a = run_once(&cfg);
    let b = run_once(&cfg);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.makespan_ns, b.makespan_ns);
}
