//! Shrinking: reduce a failing schedule to its smallest reproducer.
//!
//! The adversarial scheduler counts every decision it takes and stops
//! deviating from lowest-clock order once `perturb_limit` decisions are
//! spent — so the *perturbation prefix length* is a single scalar that
//! bounds how much of the schedule is adversarial. Shrinking bisects it:
//! find the smallest limit whose run still violates an oracle. The fault
//! budget (`max_hits`) shrinks the same way. Failure is not guaranteed
//! monotonic in either knob, so this is a greedy delta-debugging pass, not
//! an exact minimum — every candidate is re-executed, and the final config
//! is verified to still fail before it is reported.

use crate::{run_once, CheckConfig, RunOutcome};

/// Outcome of a shrink pass.
#[derive(Debug)]
pub struct Minimized {
    /// The reduced config (still failing — verified).
    pub config: CheckConfig,
    /// The outcome of the final verification run.
    pub outcome: RunOutcome,
    /// Schedules executed while shrinking.
    pub runs: u64,
}

/// Smallest value in `[lo, hi]` for which `fails` holds, assuming it holds
/// at `hi`. Bisection against a non-monotone predicate: each probe
/// re-executes the schedule, and a non-failing midpoint moves `lo` up, so
/// the result always satisfies `fails` even if it is not globally minimal.
fn bisect(mut lo: u64, mut hi: u64, mut fails: impl FnMut(u64) -> bool) -> (u64, u64) {
    let mut runs = 0;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        runs += 1;
        if fails(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (hi, runs)
}

/// Shrink `cfg` (known to fail with `witness`) and verify the result.
///
/// Returns `None` if even re-running the original config no longer fails —
/// which would mean the run was not deterministic and is itself a bug.
pub fn minimize(cfg: &CheckConfig, witness: &RunOutcome) -> Option<Minimized> {
    let mut runs = 0u64;
    let mut cfg = cfg.clone();

    // Pin the open-ended knobs to what the witness actually consumed, so
    // the bisection ranges are finite.
    if cfg.perturb_limit == u64::MAX {
        cfg.perturb_limit = witness.decisions;
    }
    if let Some(fault) = cfg.fault.as_mut() {
        if fault.max_hits == u64::MAX {
            fault.max_hits = witness.injected;
        }
    }
    runs += 1;
    if !run_once(&cfg).failed() {
        return None;
    }

    // Shrink the perturbation prefix.
    let (limit, n) = bisect(0, cfg.perturb_limit, |limit| {
        run_once(&CheckConfig {
            perturb_limit: limit,
            ..cfg.clone()
        })
        .failed()
    });
    runs += n;
    cfg.perturb_limit = limit;

    // Shrink the weak-memory reorder window (a smaller window means fewer
    // and narrower delayed-visibility gaps in the replayed schedule).
    if cfg.reorder_ns > 0 {
        let (window, n) = bisect(0, cfg.reorder_ns, |reorder_ns| {
            run_once(&CheckConfig {
                reorder_ns,
                ..cfg.clone()
            })
            .failed()
        });
        runs += n;
        cfg.reorder_ns = window;
    }

    // Shrink the read skew: a failing schedule that still fails at lower
    // (or zero) Zipf skew is easier to reason about — hot-key pile-ups are
    // one less ingredient in the repro.
    if cfg.workload == crate::Workload::Shard && cfg.zipf_milli > 0 {
        let (zipf, n) = bisect(0, cfg.zipf_milli, |zipf_milli| {
            run_once(&CheckConfig {
                zipf_milli,
                ..cfg.clone()
            })
            .failed()
        });
        runs += n;
        cfg.zipf_milli = zipf;
    }

    // Shrink the crash consult index: an earlier crash means a shorter
    // pre-crash prefix to read in the replay (1 = crash at the very first
    // consult of the planned point).
    if let Some(crash) = cfg.crash {
        let (after, n) = bisect(1, crash.after, |after| {
            let mut candidate = cfg.clone();
            candidate.crash = Some(crate::CrashSpec { after, ..crash });
            run_once(&candidate).failed()
        });
        runs += n;
        cfg.crash = Some(crate::CrashSpec { after, ..crash });
    }

    // Shrink the fault budget.
    if let Some(fault) = cfg.fault {
        let (hits, n) = bisect(0, fault.max_hits, |max_hits| {
            let mut candidate = cfg.clone();
            candidate.fault = Some(crate::FaultSpec { max_hits, ..fault });
            run_once(&candidate).failed()
        });
        runs += n;
        cfg.fault = Some(crate::FaultSpec {
            max_hits: hits,
            ..fault
        });
    }

    // Final verification run: the reported config must fail as-is.
    runs += 1;
    let outcome = run_once(&cfg);
    if !outcome.failed() {
        return None;
    }
    Some(Minimized {
        config: cfg,
        outcome,
        runs,
    })
}
