//! Model-checked workloads and their oracles.
//!
//! Each workload runs a fixed operation mix under the simulator and checks
//! invariants both *during* the run (from inside lanes, recorded — never
//! asserted — so one violation doesn't hide the rest) and *after* it
//! (quiescent-state oracles). The keyspace is partitioned so every mutable
//! key has exactly one writer lane: per-key final state is then fully
//! determined by that lane's operation sequence, which gives a sound
//! linearizability check (owner shadows) without a centralized model.
//!
//! Values embed their key in the low 16 bits, so a reader that lands on a
//! recycled node — the failure mode of a skipped version bump or a skipped
//! validation — returns a value whose embedded key disagrees with the one
//! requested, and the integrity oracle fires.

use std::sync::Mutex;

use ale_core::{scope, Ale, AleConfig, CsOptions, CsOutcome, ExecMode, LockPoison, StaticPolicy};
use ale_hashmap::{AleHashMap, MapConfig};
use ale_htm::{HtmCell, InjectedPanic};
use ale_kyoto::{AleCacheDb, DbConfig, KyotoDb};
use ale_sync::{SeqVersion, Snzi, SpinLock};
use ale_vtime::{tick, Event, Rng, Sim};

use crate::{CheckConfig, Fnv};

/// Which subject the schedule exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The paper's chained HashMap: SWOpt readers vs Lock-mode mutators.
    HashMap,
    /// The Kyoto CacheDB: nested RW-lock + slot-lock critical sections,
    /// all three modes.
    Kyoto,
    /// Transfer/audit bank on raw `HtmCell`s: the TLE lock-subscription
    /// soundness test (HTM auditors vs Lock-mode writers).
    Bank,
    /// SNZI arrive/depart storm: the indicator must never read empty while
    /// a surplus exists.
    Snzi,
    /// Panicking critical sections in all three modes: after every caught
    /// unwind the runtime must have closed the panicker's conflicting
    /// regions (seqlock parity restored), left no transaction open, and —
    /// for Lock mode — poisoned the lock until explicit recovery.
    Panic,
}

impl Workload {
    pub const ALL: [Workload; 5] = [
        Workload::HashMap,
        Workload::Kyoto,
        Workload::Bank,
        Workload::Snzi,
        Workload::Panic,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Workload::HashMap => "hashmap",
            Workload::Kyoto => "kyoto",
            Workload::Bank => "bank",
            Workload::Snzi => "snzi",
            Workload::Panic => "panic",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hashmap" => Some(Workload::HashMap),
            "kyoto" => Some(Workload::Kyoto),
            "bank" => Some(Workload::Bank),
            "snzi" => Some(Workload::Snzi),
            "panic" => Some(Workload::Panic),
            _ => None,
        }
    }
}

/// What a workload reports back to [`crate::run_once`].
#[derive(Debug)]
pub struct WorkloadOutcome {
    pub violations: Vec<String>,
    /// Workload-specific digest material (lane results, final state).
    pub digest: u64,
    pub decisions: u64,
    pub makespan_ns: u64,
}

/// Recorded oracle violations. Capped so a hot oracle can't balloon the
/// report; the count is always exact.
struct Violations {
    inner: Mutex<(Vec<String>, u64)>,
}

const MAX_RECORDED: usize = 48;

impl Violations {
    fn new() -> Self {
        Violations {
            inner: Mutex::new((Vec::new(), 0)),
        }
    }

    fn record(&self, msg: String) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.1 += 1;
        if g.0.len() < MAX_RECORDED {
            g.0.push(msg);
        }
    }

    fn into_vec(self) -> Vec<String> {
        let (mut v, total) = self.inner.into_inner().unwrap_or_else(|p| p.into_inner());
        if total > v.len() as u64 {
            v.push(format!("… and {} more violations", total - v.len() as u64));
        }
        v
    }
}

fn sim_for(cfg: &CheckConfig) -> Sim {
    Sim::new(cfg.platform.platform(), cfg.threads)
        .with_seed(cfg.seed)
        .with_sched_seed(cfg.sched_seed)
        .with_strategy(cfg.strategy.to_strategy(cfg.window_ns, cfg.permille))
        .with_perturb_limit(cfg.perturb_limit)
}

fn lane_rng(cfg: &CheckConfig, lane: usize) -> Rng {
    Rng::new(cfg.seed ^ (lane as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Dispatch to the configured workload.
pub fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    match cfg.workload {
        Workload::HashMap => run_hashmap(cfg),
        Workload::Kyoto => run_kyoto(cfg),
        Workload::Bank => run_bank(cfg),
        Workload::Snzi => run_snzi(cfg),
        Workload::Panic => run_panic(cfg),
    }
}

// ---------------------------------------------------------------------------
// HashMap: SWOpt readers vs Lock-mode mutators
// ---------------------------------------------------------------------------

/// Value encoding shared by the map workloads: generation in the high
/// bits, the key's low 16 bits embedded for the integrity oracle.
fn encode(key: u64, generation: u64) -> u64 {
    (generation << 16) | (key & 0xFFFF)
}

fn integrity_ok(key: u64, val: u64) -> bool {
    val & 0xFFFF == key & 0xFFFF
}

const STABLE_KEYS: std::ops::Range<u64> = 1..9;
const STABLE_COUNT: usize = (STABLE_KEYS.end - STABLE_KEYS.start) as usize;
const CHURN_PER_LANE: usize = 4;

fn churn_key(lane: usize, j: usize) -> u64 {
    0x100 + (lane as u64) * CHURN_PER_LANE as u64 + j as u64
}

/// Per-lane shadow of the keys this lane owns (sole writer).
#[derive(Clone)]
struct Shadow {
    present: [bool; CHURN_PER_LANE],
    value: [u64; CHURN_PER_LANE],
    generation: [u64; CHURN_PER_LANE],
}

impl Shadow {
    fn new() -> Self {
        Shadow {
            present: [false; CHURN_PER_LANE],
            value: [0; CHURN_PER_LANE],
            generation: [0; CHURN_PER_LANE],
        }
    }

    fn fold(&self, h: &mut Fnv) {
        for j in 0..CHURN_PER_LANE {
            h.write(&[self.present[j] as u8]);
            h.write_u64(self.value[j]);
            h.write_u64(self.generation[j]);
        }
    }
}

fn run_hashmap(cfg: &CheckConfig) -> WorkloadOutcome {
    // SWOpt vs Lock focus: HTM off so every optimistic read takes the
    // SWOpt path and every mutation runs under the lock, maximising the
    // windows the seqlock protocol must cover. 4 buckets force long mixed
    // chains (stable and churn keys collide).
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform())
            .without_htm()
            .with_seed(cfg.seed),
        StaticPolicy::new(0, 6),
    );
    let map: AleHashMap<u64> = AleHashMap::new(&ale, MapConfig::new(4).with_capacity(1 << 14));
    for key in STABLE_KEYS {
        map.insert(key, encode(key, 0));
    }

    let violations = Violations::new();
    let v = &violations;
    let map_ref = &map;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut shadow = Shadow::new();
        let threads = cfg.threads as u64;
        for _ in 0..cfg.ops {
            match rng.gen_range(10) {
                0..=4 => {
                    // Read a random key: a stable one or any lane's churn key.
                    let key = if rng.gen_ratio(1, 2) {
                        STABLE_KEYS.start + rng.gen_range(STABLE_KEYS.end - STABLE_KEYS.start)
                    } else {
                        churn_key(
                            rng.gen_range(threads) as usize,
                            rng.gen_range(CHURN_PER_LANE as u64) as usize,
                        )
                    };
                    let mut val = 0u64;
                    let found = map_ref.get(key, &mut val);
                    if found && !integrity_ok(key, val) {
                        v.record(format!(
                            "hashmap: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                            val & 0xFFFF
                        ));
                    }
                    if STABLE_KEYS.contains(&key) {
                        if !found {
                            v.record(format!("hashmap: stable key {key:#x} reported absent"));
                        } else if val != encode(key, 0) {
                            v.record(format!(
                                "hashmap: stable key {key:#x} value changed to {val:#x}"
                            ));
                        }
                    }
                }
                5 | 6 => {
                    // (Re-)insert one of our own keys; alternate the plain
                    // and fine-grained paths for coverage.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    shadow.generation[j] += 1;
                    let val = encode(key, shadow.generation[j]);
                    let newly = if shadow.generation[j].is_multiple_of(2) {
                        map_ref.insert(key, val)
                    } else {
                        map_ref.insert_fine(key, val)
                    };
                    if newly == shadow.present[j] {
                        v.record(format!(
                            "hashmap: insert({key:#x}) returned newly={newly} but shadow says present={}",
                            shadow.present[j]
                        ));
                    }
                    shadow.present[j] = true;
                    shadow.value[j] = val;
                }
                7 => {
                    // Remove one of our own keys via a rotating API choice.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let was = match rng.gen_range(3) {
                        0 => map_ref.remove(key),
                        1 => map_ref.remove_fine(key),
                        _ => map_ref.remove_self_abort(key),
                    };
                    if was != shadow.present[j] {
                        v.record(format!(
                            "hashmap: remove({key:#x}) returned {was} but shadow says present={}",
                            shadow.present[j]
                        ));
                    }
                    shadow.present[j] = false;
                }
                8 => {
                    // Rotate: remove one of our keys and immediately insert a
                    // *different* one. The freed slab node lands on this
                    // lane's free stripe and the very next alloc pops it, so
                    // the node is recycled under a new key within a few ticks
                    // of the unlink — the shortest possible reuse distance,
                    // and the schedule a skipped version bump or a skipped
                    // reader validation cannot survive.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let was = map_ref.remove(key);
                    if was != shadow.present[j] {
                        v.record(format!(
                            "hashmap: remove({key:#x}) returned {was} but shadow says present={}",
                            shadow.present[j]
                        ));
                    }
                    shadow.present[j] = false;
                    let j2 = (j + 1) % CHURN_PER_LANE;
                    let key2 = churn_key(id, j2);
                    shadow.generation[j2] += 1;
                    let val2 = encode(key2, shadow.generation[j2]);
                    let newly = map_ref.insert(key2, val2);
                    if newly == shadow.present[j2] {
                        v.record(format!(
                            "hashmap: insert({key2:#x}) returned newly={newly} but shadow says present={}",
                            shadow.present[j2]
                        ));
                    }
                    shadow.present[j2] = true;
                    shadow.value[j2] = val2;
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(300))),
            }
        }
        shadow
    });

    // Quiescent oracles: owner shadows are the truth now.
    let mut expected_len = STABLE_COUNT;
    for (id, shadow) in report.results.iter().enumerate() {
        for j in 0..CHURN_PER_LANE {
            let key = churn_key(id, j);
            let mut val = 0u64;
            let found = map.get(key, &mut val);
            if found != shadow.present[j] {
                violations.record(format!(
                    "hashmap: final state of {key:#x} is present={found}, owner shadow says {}",
                    shadow.present[j]
                ));
            } else if found && val != shadow.value[j] {
                violations.record(format!(
                    "hashmap: final value of {key:#x} is {val:#x}, owner shadow says {:#x} (lost update)",
                    shadow.value[j]
                ));
            }
            expected_len += shadow.present[j] as usize;
        }
    }
    for key in STABLE_KEYS {
        let mut val = 0u64;
        if !map.get(key, &mut val) {
            violations.record(format!("hashmap: stable key {key:#x} absent after the run"));
        }
    }
    let len = map.len_slow();
    if len != expected_len {
        violations.record(format!(
            "hashmap: len is {len}, owner shadows total {expected_len}"
        ));
    }
    if !map.versions_even() {
        violations.record("hashmap: a version word was left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    for shadow in &report.results {
        shadow.fold(&mut h);
    }
    h.write_u64(len as u64);
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
    }
}

// ---------------------------------------------------------------------------
// Kyoto CacheDB: nested critical sections, all three modes
// ---------------------------------------------------------------------------

fn run_kyoto(cfg: &CheckConfig) -> WorkloadOutcome {
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform()).with_seed(cfg.seed),
        StaticPolicy::new(3, 10),
    );
    let db = AleCacheDb::new(
        &ale,
        DbConfig {
            buckets_per_slot: 64,
            capacity_per_slot: 1 << 12,
            payload_cells: 2,
        },
    );
    for key in STABLE_KEYS {
        db.set(key, encode(key, 0));
    }

    let violations = Violations::new();
    let v = &violations;
    let db_ref = &db;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut shadow = Shadow::new();
        let threads = cfg.threads as u64;
        for op in 0..cfg.ops {
            if op % 64 == 63 {
                // Occasional whole-database count: the paper's "relatively
                // large hardware transaction". Racy by nature mid-run; the
                // only invariant here is that it terminates and is sane.
                let n = db_ref.count();
                let ceiling = STABLE_COUNT + cfg.threads * CHURN_PER_LANE;
                if n > ceiling {
                    v.record(format!("kyoto: count() returned {n} > ceiling {ceiling}"));
                }
                continue;
            }
            match rng.gen_range(10) {
                0..=4 => {
                    let key = if rng.gen_ratio(1, 2) {
                        STABLE_KEYS.start + rng.gen_range(STABLE_KEYS.end - STABLE_KEYS.start)
                    } else {
                        churn_key(
                            rng.gen_range(threads) as usize,
                            rng.gen_range(CHURN_PER_LANE as u64) as usize,
                        )
                    };
                    match db_ref.get(key) {
                        Some(val) if !integrity_ok(key, val) => v.record(format!(
                            "kyoto: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                            val & 0xFFFF
                        )),
                        Some(val) if STABLE_KEYS.contains(&key) && val != encode(key, 0) => v
                            .record(format!(
                                "kyoto: stable key {key:#x} value changed to {val:#x}"
                            )),
                        None if STABLE_KEYS.contains(&key) => {
                            v.record(format!("kyoto: stable key {key:#x} reported absent"))
                        }
                        _ => {}
                    }
                }
                5 | 6 => {
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    shadow.generation[j] += 1;
                    let val = encode(key, shadow.generation[j]);
                    let newly = db_ref.set(key, val);
                    if newly == shadow.present[j] {
                        v.record(format!(
                            "kyoto: set({key:#x}) returned newly={newly} but shadow says present={}",
                            shadow.present[j]
                        ));
                    }
                    shadow.present[j] = true;
                    shadow.value[j] = val;
                }
                7 | 8 => {
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let was = db_ref.remove(key);
                    if was != shadow.present[j] {
                        v.record(format!(
                            "kyoto: remove({key:#x}) returned {was} but shadow says present={}",
                            shadow.present[j]
                        ));
                    }
                    shadow.present[j] = false;
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(300))),
            }
        }
        shadow
    });

    let mut expected = STABLE_COUNT;
    for (id, shadow) in report.results.iter().enumerate() {
        for j in 0..CHURN_PER_LANE {
            let key = churn_key(id, j);
            let found = db.get(key);
            match (found, shadow.present[j]) {
                (Some(val), true) if val != shadow.value[j] => violations.record(format!(
                    "kyoto: final value of {key:#x} is {val:#x}, owner shadow says {:#x} (lost update)",
                    shadow.value[j]
                )),
                (None, true) => violations.record(format!(
                    "kyoto: final state of {key:#x} is absent, owner shadow says present"
                )),
                (Some(_), false) => violations.record(format!(
                    "kyoto: final state of {key:#x} is present, owner shadow says absent"
                )),
                _ => {}
            }
            expected += shadow.present[j] as usize;
        }
    }
    for key in STABLE_KEYS {
        if db.get(key).is_none() {
            violations.record(format!("kyoto: stable key {key:#x} absent after the run"));
        }
    }
    let n = db.count();
    if n != expected {
        violations.record(format!(
            "kyoto: count() is {n}, owner shadows total {expected}"
        ));
    }
    if !db.versions_even() {
        violations.record("kyoto: a slot version was left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    for shadow in &report.results {
        shadow.fold(&mut h);
    }
    h.write_u64(n as u64);
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
    }
}

// ---------------------------------------------------------------------------
// Bank: the TLE lock-subscription soundness test
// ---------------------------------------------------------------------------

const ACCOUNTS: usize = 12;
const INITIAL_BALANCE: u64 = 1_000;

fn run_bank(cfg: &CheckConfig) -> WorkloadOutcome {
    let total = ACCOUNTS as u64 * INITIAL_BALANCE;
    let accounts: Vec<HtmCell<u64>> = (0..ACCOUNTS)
        .map(|_| HtmCell::new(INITIAL_BALANCE))
        .collect();
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform())
            .without_swopt()
            .with_seed(cfg.seed),
        StaticPolicy::new(4, 0),
    );
    let lock = ale.new_lock("bankLock", SpinLock::new());

    let violations = Violations::new();
    let v = &violations;
    let accounts_ref = &accounts;
    let lock_ref = &lock;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut audits = 0u64;
        for _ in 0..cfg.ops {
            if id % 2 == 0 {
                // Writer: Lock-mode transfer with a wide window between the
                // debit and the credit. An HTM auditor that fails to
                // subscribe to the lock can commit a sum from inside this
                // window.
                let a = rng.gen_range(ACCOUNTS as u64) as usize;
                let b = (a + 1 + rng.gen_range(ACCOUNTS as u64 - 1) as usize) % ACCOUNTS;
                let amount = 1 + rng.gen_range(5);
                lock_ref.cs_plain(
                    scope!("bank::transfer"),
                    CsOptions::new().without_htm(),
                    |_| {
                        let from = accounts_ref[a].get();
                        if from >= amount {
                            accounts_ref[a].set(from - amount);
                            tick(Event::LocalWork(500));
                            let to = accounts_ref[b].get();
                            accounts_ref[b].set(to + amount);
                        }
                    },
                );
            } else {
                // Auditor: sums every account, preferably in HTM mode.
                let sum = lock_ref.cs_plain(scope!("bank::audit"), CsOptions::new(), |_| {
                    accounts_ref.iter().map(|c| c.get()).sum::<u64>()
                });
                audits += 1;
                if sum != total {
                    v.record(format!(
                        "bank: audit observed sum {sum}, expected {total} (torn read of a Lock-mode transfer)"
                    ));
                }
                tick(Event::LocalWork(1 + rng.gen_range(200)));
            }
        }
        audits
    });

    let final_sum: u64 = accounts.iter().map(|c| c.get()).sum();
    if final_sum != total {
        violations.record(format!(
            "bank: final sum {final_sum} != {total} (lost update)"
        ));
    }

    let mut h = Fnv::new();
    for audits in &report.results {
        h.write_u64(*audits);
    }
    h.write_u64(final_sum);
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
    }
}

// ---------------------------------------------------------------------------
// SNZI: the indicator must never read empty while a surplus exists
// ---------------------------------------------------------------------------

fn run_snzi(cfg: &CheckConfig) -> WorkloadOutcome {
    let snzi = Snzi::new(3);
    let violations = Violations::new();
    let v = &violations;
    let snzi_ref = &snzi;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut arrivals = 0u64;
        for i in 0..cfg.ops {
            let guard = snzi_ref.arrive_at(id * 7 + i as usize);
            arrivals += 1;
            // Sound under any interleaving: our own arrival is outstanding,
            // so the surplus is provably nonzero right now.
            if !snzi_ref.query() {
                v.record(format!(
                    "snzi: query() returned empty while lane {id} held an arrival (under-count)"
                ));
            }
            tick(Event::LocalWork(1 + rng.gen_range(200)));
            drop(guard);
        }
        arrivals
    });

    if snzi.query() {
        violations.record("snzi: indicator still nonzero after every arrival departed".into());
    }

    let mut h = Fnv::new();
    for arrivals in &report.results {
        h.write_u64(*arrivals);
    }
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
    }
}

// ---------------------------------------------------------------------------
// Panic: unwind safety in all three execution modes
// ---------------------------------------------------------------------------

/// Which mode a panic op targets, rotating over the run.
fn panic_target(op: u64) -> ExecMode {
    match (op / 16) % 3 {
        0 => ExecMode::Lock,
        1 => ExecMode::Htm,
        _ => ExecMode::SwOpt,
    }
}

fn run_panic(cfg: &CheckConfig) -> WorkloadOutcome {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    ale_core::init_panic_hook();
    let total = 2 * INITIAL_BALANCE;
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform())
            .with_seed(cfg.seed)
            .with_stall_watchdog(50_000),
        StaticPolicy::new(3, 3),
    );
    let lock = ale.new_lock("panicLock", SpinLock::new());
    let ver = SeqVersion::new();
    let a = HtmCell::new(INITIAL_BALANCE);
    let b = HtmCell::new(INITIAL_BALANCE);

    let violations = Violations::new();
    let v = &violations;
    let lock_ref = &lock;
    let (ver_ref, a_ref, b_ref) = (&ver, &a, &b);
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut panics = 0u64;
        for op in 0..cfg.ops {
            // Only lane 0 throws Lock-mode panics: a Lock-mode panic poisons
            // the lock, and a single poisoner makes the poisoned-then-
            // recovered oracle sound (nobody else clears the flag).
            let target = panic_target(op);
            let boom =
                op % 16 == 7 && !(target == ExecMode::Lock && id != 0) && rng.gen_ratio(3, 4);
            let ran = catch_unwind(AssertUnwindSafe(|| match target {
                ExecMode::Lock => {
                    // Lock-mode transfer with a panic window *inside* the
                    // conflicting region (worst case for seqlock parity).
                    let amount = 1 + rng.gen_range(5);
                    lock_ref.cs_plain(
                        scope!("panic::transfer"),
                        CsOptions::new().without_htm(),
                        |_| {
                            ver_ref.begin_conflicting_action();
                            if boom {
                                std::panic::panic_any(InjectedPanic);
                            }
                            let from = a_ref.get();
                            if from >= amount {
                                a_ref.set(from - amount);
                                tick(Event::LocalWork(200));
                                b_ref.set(b_ref.get() + amount);
                            }
                            ver_ref.end_conflicting_action();
                        },
                    );
                }
                ExecMode::Htm => {
                    // Audit, preferably in HTM; a panicking attempt first
                    // dirties an account so a surviving speculative write
                    // would break the conservation oracle.
                    let sum = lock_ref.cs_plain(scope!("panic::audit"), CsOptions::new(), |cs| {
                        if boom && cs.mode() == ExecMode::Htm {
                            a_ref.set(0);
                            std::panic::panic_any(InjectedPanic);
                        }
                        a_ref.get() + b_ref.get()
                    });
                    if sum != total {
                        v.record(format!("panic: audit observed sum {sum}, expected {total}"));
                    }
                }
                ExecMode::SwOpt => {
                    // Versioned optimistic read with bounded retries (an odd
                    // version fails the attempt instead of spinning, so a
                    // leaked region degrades throughput, never liveness).
                    lock_ref.cs(
                        scope!("panic::read"),
                        CsOptions::new().with_swopt().non_conflicting(),
                        |cs| -> CsOutcome<u64> {
                            if cs.is_swopt() {
                                let v0 = ver_ref.read(false);
                                if v0 % 2 == 1 {
                                    return CsOutcome::SwOptFail;
                                }
                                if boom {
                                    std::panic::panic_any(InjectedPanic);
                                }
                                let sum = a_ref.get() + b_ref.get();
                                if ver_ref.read(false) != v0 {
                                    return CsOutcome::SwOptFail;
                                }
                                if sum != total {
                                    v.record(format!(
                                        "panic: validated SWOpt read saw sum {sum}, expected {total}"
                                    ));
                                }
                                CsOutcome::Done(sum)
                            } else {
                                CsOutcome::Done(a_ref.get() + b_ref.get())
                            }
                        },
                    );
                }
            }));

            if let Err(payload) = ran {
                if payload.downcast_ref::<InjectedPanic>().is_some() {
                    panics += 1;
                    // Unwind-safety oracles, sound lane-locally: whatever
                    // regions THIS lane's panicking body left open must have
                    // been closed on the way out.
                    let open = ale_sync::open_region_count();
                    if open != 0 {
                        v.record(format!(
                            "panic: {open} conflicting region(s) leaked across a caught panic"
                        ));
                    }
                    if target == ExecMode::Lock {
                        if !lock_ref.is_poisoned() {
                            v.record("panic: Lock-mode panic did not poison the lock".into());
                        }
                        lock_ref.clear_poison();
                        // Recovery must actually work: a follow-up section
                        // (any mode) has to complete.
                        let redo = catch_unwind(AssertUnwindSafe(|| {
                            lock_ref.cs_plain(scope!("panic::recover"), CsOptions::new(), |_| {
                                a_ref.get() + b_ref.get()
                            })
                        }));
                        match redo {
                            Ok(sum) if sum != total => v.record(format!(
                                "panic: post-recovery audit saw sum {sum}, expected {total}"
                            )),
                            Err(p) if p.downcast_ref::<LockPoison>().is_none() => {
                                v.record("panic: post-recovery section panicked".into())
                            }
                            _ => {}
                        }
                    }
                } else if payload.downcast_ref::<LockPoison>().is_some() {
                    // Another lane's Lock-mode panic poisoned the lock while
                    // we were entering; skip the op and let it recover.
                    tick(Event::LocalWork(100));
                } else {
                    v.record("panic: unexpected panic payload escaped a critical section".into());
                }
            }
            tick(Event::LocalWork(1 + rng.gen_range(120)));
        }
        // Nothing this lane opened may outlive it.
        if ale_sync::open_region_count() != 0 {
            v.record(format!(
                "panic: lane {id} ended with conflicting regions still open"
            ));
        }
        panics
    });

    let final_sum = a.get() + b.get();
    if final_sum != total {
        violations.record(format!(
            "panic: final sum {final_sum} != {total} (partial transfer survived a panic)"
        ));
    }
    if ver.read(false) % 2 == 1 {
        violations.record("panic: version word left odd after quiescence".into());
    }
    if lock.is_poisoned() {
        violations.record("panic: lock left poisoned after every panic was recovered".into());
    }

    let mut h = Fnv::new();
    for panics in &report.results {
        h.write_u64(*panics);
    }
    h.write_u64(final_sum);
    h.write_u64(ver.read(false));
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
    }
}
