//! # ale-check — dynamic checking harness for the ALE runtime
//!
//! Systematic testing in three moves (DESIGN.md §9):
//!
//! 1. **Schedule exploration** — every run executes under the deterministic
//!    simulator with one of the adversarial
//!    [`SchedStrategy`](ale_vtime::SchedStrategy)s (random-walk
//!    tie-breaking, preemption-point perturbation, most-conflicting-thread)
//!    and a fresh scheduler seed per iteration, so a seed sweep explores
//!    many distinct interleavings while each one stays bit-for-bit
//!    replayable.
//! 2. **Fault injection** — an [`InjectPlan`](ale_htm::InjectPlan) steers
//!    transactions down the rarely-taken abort paths (conflict, capacity,
//!    spurious, lock-held), and the seqlock *chaos mode* stretches
//!    odd-version windows so schedules land inside them.
//! 3. **Oracles + shrinking** — after every schedule the workload's
//!    invariants are checked (per-key linearizability against owner
//!    shadows, value integrity, bank-sum conservation, SNZI
//!    never-under-counts, version words never left odd). A failing run is
//!    shrunk by bisecting the scheduler's perturbation budget (and the
//!    fault budget) and written as a replay file that
//!    `ale-check --replay FILE` reproduces exactly.
//!
//! The harness proves itself with compile-time-gated mutations (see the
//! `mut-*` features): each classic elision bug must be caught within a
//! bounded schedule budget by `ale-check selftest`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ale_core::CsEvent;
use ale_htm::{CrashPlan, CrashPoint, InjectKind, InjectPlan, InjectPoint, InjectRule, TornMode};
use ale_vtime::{PlatformKind, SchedStrategy};

pub mod minimize;
pub mod replay;
pub mod workloads;

pub use workloads::Workload;

/// Which scheduler drives a run (a CLI/replay-friendly mirror of
/// [`SchedStrategy`], which carries its parameters inline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// Exact conservative lowest-clock order (the figures' scheduler).
    LowestClock,
    /// Uniform choice among near-tied runnable lanes.
    #[default]
    RandomWalk,
    /// Lowest-clock order with probabilistic perturbed preemptions.
    Preempt,
    /// Greedy "schedule the most-conflicting thread".
    MostConflicting,
    /// Weak-memory visibility-delay adversary: always hand off to a random
    /// peer at every decision point (maximal preemption), pairing with the
    /// reorder fences at seqlock publish/subscribe boundaries.
    Reorder,
}

impl StrategyKind {
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::LowestClock,
        StrategyKind::RandomWalk,
        StrategyKind::Preempt,
        StrategyKind::MostConflicting,
        StrategyKind::Reorder,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::LowestClock => "lowest-clock",
            StrategyKind::RandomWalk => "random-walk",
            StrategyKind::Preempt => "preempt",
            StrategyKind::MostConflicting => "most-conflicting",
            StrategyKind::Reorder => "reorder",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lowest-clock" => Some(StrategyKind::LowestClock),
            "random-walk" => Some(StrategyKind::RandomWalk),
            "preempt" => Some(StrategyKind::Preempt),
            "most-conflicting" => Some(StrategyKind::MostConflicting),
            "reorder" => Some(StrategyKind::Reorder),
            _ => None,
        }
    }

    /// The concrete scheduler this kind selects, with the run's parameters.
    pub fn to_strategy(self, window_ns: u64, permille: u64) -> SchedStrategy {
        match self {
            StrategyKind::LowestClock => SchedStrategy::LowestClock,
            StrategyKind::RandomWalk => SchedStrategy::RandomWalk { window_ns },
            StrategyKind::Preempt => SchedStrategy::Preempt {
                window_ns,
                permille,
            },
            StrategyKind::MostConflicting => SchedStrategy::MostConflicting { window_ns },
            StrategyKind::Reorder => SchedStrategy::Reorder { window_ns },
        }
    }
}

/// One fault-injection rule plus its budget, as configured from the CLI or
/// a replay file (`point:kind:every:max_hits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub point: InjectPoint,
    pub kind: InjectKind,
    /// Fire on every `every`-th event at `point`.
    pub every: u64,
    /// Total injected-abort budget (the minimiser bisects this).
    pub max_hits: u64,
}

impl FaultSpec {
    pub fn to_plan(self) -> InjectPlan {
        InjectPlan::new(vec![InjectRule {
            point: self.point,
            every: self.every,
            kind: self.kind,
        }])
        .limited(self.max_hits)
    }
}

/// A planned process crash, as configured from the CLI or a replay file
/// (`point:after`). Consulted by the durable CacheDB's WAL code paths; the
/// durable workload arms it after its init phase so `after` counts
/// workload-phase consults only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    pub point: CrashPoint,
    /// Fire on the `after`-th consult of `point` (1 = the first); the
    /// minimiser bisects this to find the shortest failing prefix.
    pub after: u64,
}

impl CrashSpec {
    pub fn to_plan(self, torn: Option<TornMode>) -> CrashPlan {
        let plan = CrashPlan::new(self.point, self.after);
        match torn {
            Some(mode) => plan.with_torn(mode),
            None => plan,
        }
    }
}

/// Everything that determines one schedule, exactly — the unit of replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckConfig {
    pub workload: Workload,
    pub platform: PlatformKind,
    pub threads: usize,
    /// Operations per lane.
    pub ops: u64,
    /// Workload seed (per-lane random streams).
    pub seed: u64,
    /// Scheduler decision-stream seed.
    pub sched_seed: u64,
    pub strategy: StrategyKind,
    /// Eligibility window for adversarial strategies.
    pub window_ns: u64,
    /// Perturbation probability for [`StrategyKind::Preempt`], in permille.
    pub permille: u64,
    /// Adversarial-decision budget (`u64::MAX` = unlimited); the minimiser
    /// bisects this to find the shortest failing perturbation prefix.
    pub perturb_limit: u64,
    /// Seqlock/grouping chaos: stretch conflicting regions by this many
    /// virtual nanoseconds (0 = off).
    pub chaos_ns: u64,
    /// Weak-memory reorder fences: charge this many virtual nanoseconds at
    /// every seqlock publish/subscribe boundary (0 = off), so adversarial
    /// schedules — especially [`StrategyKind::Reorder`] — run whole
    /// conflicting regions inside the "store still in flight" window.
    pub reorder_ns: u64,
    /// Entry lifetime base for the TTL-cache workload, in virtual
    /// nanoseconds (each fill adds a seeded jitter on top).
    pub ttl_ns: u64,
    /// Zipfian read-skew for the sharded-map workload, as `theta * 1000`
    /// (`1100` = the benchmarks' Zipf(1.1); `0` = uniform). Stored in
    /// permille so replay files round-trip exactly and the minimiser can
    /// bisect the skew like any other integer knob.
    pub zipf_milli: u64,
    /// Shard count for the sharded-map workload (rounded up to a power of
    /// two by the map itself).
    pub shards: usize,
    pub fault: Option<FaultSpec>,
    /// Run with `ale-trace` event recording on (full sampling). Adds the
    /// trace oracle — every completed critical section must have emitted a
    /// mode-decision event — and folds the merged stream's digest into the
    /// run digest. `false` (the default) leaves digests bit-identical to a
    /// harness without tracing compiled in.
    pub trace: bool,
    /// Kill the simulated process at a WAL crash point and verify recovery
    /// (the durable workload's oracle; inert for workloads that never
    /// touch the WAL). `None` leaves digests untouched.
    pub crash: Option<CrashSpec>,
    /// Tail-record damage when the crash lands mid-record (`None` =
    /// truncate). Requires `crash`.
    pub torn: Option<TornMode>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            workload: Workload::HashMap,
            platform: PlatformKind::Testbed,
            threads: 4,
            ops: 300,
            seed: 0,
            sched_seed: 0,
            strategy: StrategyKind::RandomWalk,
            // 2000 ns covers a whole Lock-mode unlink + slab free + realloc
            // sequence on the testbed cost model, so a parked SWOpt reader
            // can stay parked across node recycling — the window the seqlock
            // validation exists to close.
            window_ns: 2000,
            permille: 120,
            perturb_limit: u64::MAX,
            chaos_ns: 120,
            reorder_ns: 0,
            // 800 ns ≈ a handful of ops on the testbed cost model: entries
            // expire mid-run, so reads race eviction instead of always
            // hitting fresh or always hitting dead state.
            ttl_ns: 800,
            // Zipf(1.1) by default: skew is what makes per-shard routing
            // interesting, and uniform remains reachable with --zipf 0.
            zipf_milli: 1100,
            shards: 4,
            fault: None,
            trace: false,
            crash: None,
            torn: None,
        }
    }
}

/// The outcome of one schedule.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Oracle violations (empty = the schedule is clean). Lane panics are
    /// reported here too, not propagated.
    pub violations: Vec<String>,
    /// Deterministic digest of the run: critical-section event stream,
    /// per-lane results, makespan, decisions. Identical configs produce
    /// identical digests, bit for bit.
    pub digest: u64,
    /// Adversarial scheduling decisions the run consumed.
    pub decisions: u64,
    /// Virtual makespan of the run.
    pub makespan_ns: u64,
    /// Faults the injection plan actually fired.
    pub injected: u64,
    /// Whether the planned crash fired (always `false` without
    /// [`CheckConfig::crash`]).
    pub crashed: bool,
    /// The merged trace stream, when [`CheckConfig::trace`] was set.
    pub trace: Option<ale_trace::Drained>,
}

impl RunOutcome {
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// FNV-1a, the harness's digest function (stable, dependency-free).
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The injection plan, chaos delay and CS observer are process-global, so
/// runs must not overlap — everything goes through this lock.
static RUN_GUARD: Mutex<()> = Mutex::new(());

fn run_guard() -> MutexGuard<'static, ()> {
    RUN_GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

/// Execute one schedule under `cfg` and check every oracle.
///
/// Deterministic: the same config yields the same [`RunOutcome`] (same
/// violations, same digest) on every call.
pub fn run_once(cfg: &CheckConfig) -> RunOutcome {
    let _serial = run_guard();

    // Arm the global hooks for this schedule.
    ale_sync::chaos::set_publication_delay(cfg.chaos_ns);
    ale_sync::reorder::set_window(cfg.reorder_ns);
    if let Some(fault) = cfg.fault {
        ale_htm::inject::install(fault.to_plan());
    } else {
        ale_htm::inject::clear();
    }
    if let Some(crash) = cfg.crash {
        // The durable workload re-arms this after its init phase (so the
        // plan's consult budget counts workload-phase appends only), but
        // installing here keeps a stale plan from a panicked previous run
        // from leaking in.
        ale_htm::inject::install_crash(crash.to_plan(cfg.torn));
    } else {
        ale_htm::inject::clear_crash();
    }
    if cfg.trace {
        // Full sampling (the determinism oracle needs every record) and a
        // ring deep enough that no schedule in the harness's range drops.
        ale_trace::configure(&ale_trace::TraceConfig::enabled().with_ring_capacity(1 << 16));
        // Stamp mode-decision events with the workload, so the exported
        // mode mix breaks down per scenario.
        ale_trace::set_scenario(cfg.workload.name());
    } else if ale_trace::is_enabled() {
        // A previous caller left tracing on; a trace-off run must behave
        // exactly like one where tracing never existed.
        ale_trace::reset();
    }
    let events = Arc::new(Mutex::new(Fnv::new()));
    let sink = Arc::clone(&events);
    let completes = Arc::new(AtomicU64::new(0));
    let completes_sink = Arc::clone(&completes);
    ale_core::set_cs_observer(Arc::new(move |ev: &CsEvent| {
        let mut h = sink.lock().unwrap_or_else(|p| p.into_inner());
        match *ev {
            CsEvent::Attempt { lock, mode } => {
                h.write(&[1, mode.index() as u8]);
                h.write(lock.as_bytes());
            }
            CsEvent::HtmAbort { lock, code } => {
                let (tag, detail) = match code {
                    ale_htm::AbortCode::Conflict => (0u8, 0u8),
                    ale_htm::AbortCode::Capacity => (1, 0),
                    ale_htm::AbortCode::Explicit(c) => (2, c),
                    ale_htm::AbortCode::Spurious => (3, 0),
                };
                h.write(&[2, tag, detail]);
                h.write(lock.as_bytes());
            }
            CsEvent::SwOptFail { lock } => {
                h.write(&[3]);
                h.write(lock.as_bytes());
            }
            CsEvent::Complete { lock, mode } => {
                completes_sink.fetch_add(1, Ordering::Relaxed);
                h.write(&[4, mode.index() as u8]);
                h.write(lock.as_bytes());
            }
            CsEvent::Panicked { lock, mode } => {
                h.write(&[5, mode.index() as u8]);
                h.write(lock.as_bytes());
            }
            CsEvent::Poisoned { lock } => {
                h.write(&[6]);
                h.write(lock.as_bytes());
            }
            CsEvent::ProtocolError { lock, error } => {
                h.write(&[7, error as u8]);
                h.write(lock.as_bytes());
            }
            CsEvent::BreakerTrip { lock } => {
                h.write(&[8]);
                h.write(lock.as_bytes());
            }
            CsEvent::BreakerRestore { lock } => {
                h.write(&[9]);
                h.write(lock.as_bytes());
            }
            CsEvent::LockStall { lock, waited_ns } => {
                // The wait length depends on scheduling alone; the digest
                // keeps only the fact that a stall was reported.
                let _ = waited_ns;
                h.write(&[10]);
                h.write(lock.as_bytes());
            }
        }
    }));

    // Lane panics (oracle debug-asserts, poisoned invariants) count as
    // violations; they must not take the harness down.
    let result = catch_unwind(AssertUnwindSafe(|| workloads::run(cfg)));

    // Disarm, whatever happened.
    ale_core::clear_cs_observer();
    ale_sync::chaos::set_publication_delay(0);
    ale_sync::reorder::set_window(0);
    ale_trace::clear_scenario();
    let injected = ale_htm::inject::clear();
    let crashed = ale_htm::inject::clear_crash();
    let trace = if cfg.trace {
        let drained = ale_trace::drain();
        ale_trace::reset();
        Some(drained)
    } else {
        None
    };

    let mut digest = Fnv::new();
    digest.write_u64(events.lock().unwrap_or_else(|p| p.into_inner()).finish());
    // Folded only when tracing was requested, so trace-off digests stay
    // bit-identical to a harness without tracing at all.
    if let Some(t) = &trace {
        digest.write_u64(t.digest());
    }
    // Same contract for the crash knob: folded only when a crash was
    // planned, so crash-off digests match a harness without the knob.
    if cfg.crash.is_some() {
        digest.write_u64(crashed as u64);
    }

    match result {
        Ok(out) => {
            digest.write_u64(out.digest);
            digest.write_u64(out.makespan_ns);
            digest.write_u64(out.decisions);
            digest.write_u64(injected);
            let mut violations = out.violations;
            if let Some((executions, exact)) = out.stat_parity {
                // The stat-parity oracle: every completed critical section
                // bumps its granule's executions counter exactly once —
                // per-event under the simulator, via the batched exit
                // flush otherwise — so while the counters are still in the
                // BFP exact regime the totals must agree. A flush that
                // drops its delta (the `mut-stat-batch-lost` mutation)
                // shows up here.
                let completed = completes.load(Ordering::Relaxed);
                if exact && executions != completed {
                    violations.push(format!(
                        "stat parity oracle: granule stats record {executions} \
                         execution(s) for {completed} completed critical section(s)"
                    ));
                }
            }
            if let Some(t) = &trace {
                // The trace oracle: every completed critical section emits
                // exactly one mode-decision event, so at full sampling with
                // no ring drops the two counts must agree. A skipped or
                // duplicated emit (the `mut-trace-drop-event` mutation)
                // shows up here.
                let traced = t
                    .events
                    .iter()
                    .filter(|e| e.kind() == Some(ale_trace::EventKind::ModeDecision))
                    .count() as u64;
                let completed = completes.load(Ordering::Relaxed);
                if t.dropped == 0 && traced != completed {
                    violations.push(format!(
                        "trace oracle: {traced} mode-decision event(s) for \
                         {completed} completed critical section(s)"
                    ));
                }
            }
            RunOutcome {
                violations,
                digest: digest.finish(),
                decisions: out.decisions,
                makespan_ns: out.makespan_ns,
                injected,
                crashed,
                trace,
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            RunOutcome {
                violations: vec![format!("lane panic: {msg}")],
                digest: digest.finish(),
                decisions: 0,
                makespan_ns: 0,
                injected,
                crashed,
                trace,
            }
        }
    }
}

/// The mutation compiled into this binary, if any (selftest mode).
pub fn active_mutation() -> Option<&'static str> {
    if cfg!(feature = "mut-lazy-subscription") {
        Some("mut-lazy-subscription")
    } else if cfg!(feature = "mut-skip-version-bump") {
        Some("mut-skip-version-bump")
    } else if cfg!(feature = "mut-skip-validate") {
        Some("mut-skip-validate")
    } else if cfg!(feature = "mut-snzi-skip-half") {
        Some("mut-snzi-skip-half")
    } else if cfg!(feature = "mut-leak-region-on-panic") {
        Some("mut-leak-region-on-panic")
    } else if cfg!(feature = "mut-trace-drop-event") {
        Some("mut-trace-drop-event")
    } else if cfg!(feature = "mut-ttl-stale-read") {
        Some("mut-ttl-stale-read")
    } else if cfg!(feature = "mut-reorder-publish") {
        Some("mut-reorder-publish")
    } else if cfg!(feature = "mut-wal-ack-before-durable") {
        Some("mut-wal-ack-before-durable")
    } else if cfg!(feature = "mut-recovery-skip-checksum") {
        Some("mut-recovery-skip-checksum")
    } else if cfg!(feature = "mut-resize-skip-republish") {
        Some("mut-resize-skip-republish")
    } else if cfg!(feature = "mut-shard-route-stale") {
        Some("mut-shard-route-stale")
    } else if cfg!(feature = "mut-stat-batch-lost") {
        Some("mut-stat-batch-lost")
    } else {
        None
    }
}

/// The workload that detects a given mutation (selftest targeting).
pub fn workload_for_mutation(mutation: &str) -> Workload {
    match mutation {
        "mut-lazy-subscription" => Workload::Bank,
        "mut-snzi-skip-half" => Workload::Snzi,
        "mut-leak-region-on-panic" => Workload::Panic,
        // SWOpt-heavy, so a dropped SWOpt mode-decision emit is common.
        "mut-trace-drop-event" => Workload::HashMap,
        // The expired-entry freshness oracle lives in the TTL cache.
        "mut-ttl-stale-read" => Workload::Ttl,
        // Torn epoch blocks surface in the registry's SeqBuffer loads.
        "mut-reorder-publish" => Workload::Registry,
        // Both durability mutations need the WAL + crash-point oracles.
        "mut-wal-ack-before-durable" | "mut-recovery-skip-checksum" => Workload::Durable,
        // Both resize mutations only bite while a shard migration is live.
        "mut-resize-skip-republish" | "mut-shard-route-stale" => Workload::Shard,
        // A dropped executions flush under-reports against the completion
        // count on any CS-heavy workload; the hashmap samples stat parity.
        "mut-stat-batch-lost" => Workload::HashMap,
        // Both hashmap mutations break SWOpt-reader integrity.
        _ => Workload::HashMap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_kind_round_trips() {
        for k in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(k.name()), Some(k));
        }
        assert_eq!(StrategyKind::parse("nonsense"), None);
    }

    #[test]
    fn fnv_is_stable() {
        let mut h = Fnv::new();
        h.write(b"ale-check");
        let a = h.finish();
        let mut h2 = Fnv::new();
        h2.write(b"ale-check");
        assert_eq!(a, h2.finish());
        assert_ne!(a, Fnv::new().finish());
    }

    #[test]
    fn run_once_is_deterministic_and_clean() {
        let cfg = CheckConfig {
            ops: 60,
            seed: 7,
            sched_seed: 9,
            ..CheckConfig::default()
        };
        let a = run_once(&cfg);
        let b = run_once(&cfg);
        assert_eq!(
            a.digest, b.digest,
            "same config must replay bit-identically"
        );
        assert_eq!(a.violations, b.violations);
        if active_mutation().is_none() {
            assert!(
                !a.failed(),
                "clean build must pass the oracles: {:?}",
                a.violations
            );
        }
    }

    #[test]
    fn different_sched_seeds_give_different_schedules() {
        let base = CheckConfig {
            ops: 60,
            seed: 7,
            ..CheckConfig::default()
        };
        let a = run_once(&CheckConfig {
            sched_seed: 1,
            ..base.clone()
        });
        let b = run_once(&CheckConfig {
            sched_seed: 2,
            ..base.clone()
        });
        assert_ne!(
            a.digest, b.digest,
            "distinct scheduler seeds should explore distinct interleavings"
        );
    }
}
