//! The replay file format: one failing schedule, reproducible with
//! `ale-check --replay FILE`.
//!
//! Plain `key=value` lines (one per field), `#` comments, order-free.
//! Every field of [`CheckConfig`] round-trips, so a file written by the
//! minimiser re-runs the exact minimised schedule — same seeds, same
//! strategy parameters, same fault plan — and produces the same violations
//! bit for bit.

use ale_htm::{CrashPoint, InjectKind, InjectPoint, TornMode};
use ale_vtime::PlatformKind;

use crate::{CheckConfig, CrashSpec, FaultSpec, StrategyKind, Workload};

fn point_name(p: InjectPoint) -> &'static str {
    match p {
        InjectPoint::Begin => "begin",
        InjectPoint::Read => "read",
        InjectPoint::Write => "write",
        InjectPoint::Commit => "commit",
    }
}

fn parse_point(s: &str) -> Option<InjectPoint> {
    match s {
        "begin" => Some(InjectPoint::Begin),
        "read" => Some(InjectPoint::Read),
        "write" => Some(InjectPoint::Write),
        "commit" => Some(InjectPoint::Commit),
        _ => None,
    }
}

fn kind_name(k: InjectKind) -> &'static str {
    match k {
        InjectKind::Conflict => "conflict",
        InjectKind::Capacity => "capacity",
        InjectKind::Spurious => "spurious",
        InjectKind::LockHeld => "lock-held",
        InjectKind::Panic => "panic",
    }
}

fn parse_kind(s: &str) -> Option<InjectKind> {
    match s {
        "conflict" => Some(InjectKind::Conflict),
        "capacity" => Some(InjectKind::Capacity),
        "spurious" => Some(InjectKind::Spurious),
        "lock-held" => Some(InjectKind::LockHeld),
        "panic" => Some(InjectKind::Panic),
        _ => None,
    }
}

fn crash_point_name(p: CrashPoint) -> &'static str {
    match p {
        CrashPoint::WalAppend => "wal-append",
        CrashPoint::PreCommit => "pre-commit",
        CrashPoint::PostCommit => "post-commit",
        CrashPoint::MidRecord => "mid-record",
    }
}

fn parse_crash_point(s: &str) -> Option<CrashPoint> {
    match s {
        "wal-append" => Some(CrashPoint::WalAppend),
        "pre-commit" => Some(CrashPoint::PreCommit),
        "post-commit" => Some(CrashPoint::PostCommit),
        "mid-record" => Some(CrashPoint::MidRecord),
        _ => None,
    }
}

fn torn_name(t: TornMode) -> &'static str {
    match t {
        TornMode::Truncate => "truncate",
        TornMode::Flip => "flip",
    }
}

/// Parse a CLI/replay torn-write mode: `truncate` or `flip`.
pub fn parse_torn(s: &str) -> Result<TornMode, String> {
    match s {
        "truncate" => Ok(TornMode::Truncate),
        "flip" => Ok(TornMode::Flip),
        _ => Err(format!("unknown torn mode `{s}` (truncate|flip)")),
    }
}

/// Parse a CLI/replay crash spec: `point[:after]` (`after` defaults to 1).
pub fn parse_crash(s: &str) -> Result<CrashSpec, String> {
    let (point_str, after) = match s.split_once(':') {
        Some((p, a)) => (
            p,
            a.parse()
                .map_err(|_| format!("bad crash consult index `{a}`"))?,
        ),
        None => (s, 1),
    };
    let point = parse_crash_point(point_str).ok_or_else(|| {
        format!("unknown crash point `{point_str}` (wal-append|pre-commit|post-commit|mid-record)")
    })?;
    if after == 0 {
        return Err("crash consult index must be >= 1 (0 never fires)".into());
    }
    Ok(CrashSpec { point, after })
}

/// Render a crash spec in the replay/CLI syntax.
pub fn crash_string(c: &CrashSpec) -> String {
    format!("{}:{}", crash_point_name(c.point), c.after)
}

/// Parse a CLI/replay fault spec: `point:kind:every[:max_hits]`.
pub fn parse_fault(s: &str) -> Result<FaultSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 && parts.len() != 4 {
        return Err(format!(
            "fault spec `{s}` is not point:kind:every[:max_hits]"
        ));
    }
    let point =
        parse_point(parts[0]).ok_or_else(|| format!("unknown fault point `{}`", parts[0]))?;
    let kind = parse_kind(parts[1]).ok_or_else(|| format!("unknown fault kind `{}`", parts[1]))?;
    let every: u64 = parts[2]
        .parse()
        .map_err(|_| format!("bad fault period `{}`", parts[2]))?;
    let max_hits: u64 = match parts.get(3) {
        Some(v) => v.parse().map_err(|_| format!("bad fault budget `{v}`"))?,
        None => u64::MAX,
    };
    Ok(FaultSpec {
        point,
        kind,
        every,
        max_hits,
    })
}

/// Render a fault spec in the replay/CLI syntax.
pub fn fault_string(f: &FaultSpec) -> String {
    format!(
        "{}:{}:{}:{}",
        point_name(f.point),
        kind_name(f.kind),
        f.every,
        f.max_hits
    )
}

/// Serialise a config as a replay file.
pub fn write(cfg: &CheckConfig) -> String {
    let mut out = String::new();
    out.push_str("# ale-check replay file — reproduce with:\n");
    out.push_str("#   cargo run -p ale-check -- --replay <this file>\n");
    out.push_str(&format!("workload={}\n", cfg.workload.name()));
    out.push_str(&format!("platform={}\n", cfg.platform.name()));
    out.push_str(&format!("threads={}\n", cfg.threads));
    out.push_str(&format!("ops={}\n", cfg.ops));
    out.push_str(&format!("seed={}\n", cfg.seed));
    out.push_str(&format!("sched_seed={}\n", cfg.sched_seed));
    out.push_str(&format!("strategy={}\n", cfg.strategy.name()));
    out.push_str(&format!("window_ns={}\n", cfg.window_ns));
    out.push_str(&format!("permille={}\n", cfg.permille));
    out.push_str(&format!("perturb_limit={}\n", cfg.perturb_limit));
    out.push_str(&format!("chaos_ns={}\n", cfg.chaos_ns));
    out.push_str(&format!("reorder_ns={}\n", cfg.reorder_ns));
    out.push_str(&format!("ttl_ns={}\n", cfg.ttl_ns));
    out.push_str(&format!("zipf_milli={}\n", cfg.zipf_milli));
    out.push_str(&format!("shards={}\n", cfg.shards));
    if let Some(fault) = &cfg.fault {
        out.push_str(&format!("fault={}\n", fault_string(fault)));
    }
    if cfg.trace {
        out.push_str("trace=true\n");
    }
    if let Some(crash) = &cfg.crash {
        out.push_str(&format!("crash={}\n", crash_string(crash)));
    }
    if let Some(torn) = cfg.torn {
        out.push_str(&format!("torn={}\n", torn_name(torn)));
    }
    out
}

/// Parse a replay file back into a config.
pub fn parse(text: &str) -> Result<CheckConfig, String> {
    let mut cfg = CheckConfig::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: not key=value: `{line}`", lineno + 1))?;
        let bad = |what: &str| format!("line {}: bad {what} `{value}`", lineno + 1);
        match key {
            "workload" => {
                cfg.workload = Workload::parse(value).ok_or_else(|| bad("workload"))?;
            }
            "platform" => {
                cfg.platform = PlatformKind::parse(value).ok_or_else(|| bad("platform"))?;
            }
            "threads" => cfg.threads = value.parse().map_err(|_| bad("threads"))?,
            "ops" => cfg.ops = value.parse().map_err(|_| bad("ops"))?,
            "seed" => cfg.seed = value.parse().map_err(|_| bad("seed"))?,
            "sched_seed" => cfg.sched_seed = value.parse().map_err(|_| bad("sched_seed"))?,
            "strategy" => {
                cfg.strategy = StrategyKind::parse(value).ok_or_else(|| bad("strategy"))?;
            }
            "window_ns" => cfg.window_ns = value.parse().map_err(|_| bad("window_ns"))?,
            "permille" => cfg.permille = value.parse().map_err(|_| bad("permille"))?,
            "perturb_limit" => {
                cfg.perturb_limit = value.parse().map_err(|_| bad("perturb_limit"))?;
            }
            "chaos_ns" => cfg.chaos_ns = value.parse().map_err(|_| bad("chaos_ns"))?,
            "reorder_ns" => cfg.reorder_ns = value.parse().map_err(|_| bad("reorder_ns"))?,
            "ttl_ns" => cfg.ttl_ns = value.parse().map_err(|_| bad("ttl_ns"))?,
            "zipf_milli" => cfg.zipf_milli = value.parse().map_err(|_| bad("zipf_milli"))?,
            "shards" => cfg.shards = value.parse().map_err(|_| bad("shards"))?,
            "fault" => cfg.fault = Some(parse_fault(value)?),
            "trace" => cfg.trace = value.parse().map_err(|_| bad("trace"))?,
            "crash" => cfg.crash = Some(parse_crash(value)?),
            "torn" => cfg.torn = Some(parse_torn(value)?),
            _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
        }
    }
    if cfg.threads == 0 {
        return Err("threads must be >= 1".into());
    }
    if cfg.shards == 0 {
        return Err("shards must be >= 1".into());
    }
    if cfg.torn.is_some() && cfg.crash.is_none() {
        return Err("torn= requires crash=".into());
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field() {
        let cfg = CheckConfig {
            workload: Workload::Bank,
            platform: PlatformKind::Haswell,
            threads: 6,
            ops: 123,
            seed: 42,
            sched_seed: 977,
            strategy: StrategyKind::MostConflicting,
            window_ns: 250,
            permille: 75,
            perturb_limit: 12_345,
            chaos_ns: 60,
            reorder_ns: 350,
            ttl_ns: 640,
            zipf_milli: 990,
            shards: 8,
            fault: Some(FaultSpec {
                point: InjectPoint::Commit,
                kind: InjectKind::LockHeld,
                every: 7,
                max_hits: 3,
            }),
            trace: true,
            crash: Some(CrashSpec {
                point: CrashPoint::MidRecord,
                after: 17,
            }),
            torn: Some(TornMode::Flip),
        };
        let text = write(&cfg);
        let parsed = parse(&text).expect("replay text must parse");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn new_knobs_round_trip_byte_identical() {
        // The scenario-pack knobs (workload name, reorder window, TTL
        // params) must survive parse → re-serialize with no drift: the
        // second rendering is byte-identical to the first.
        for workload in [
            Workload::Ttl,
            Workload::Queue,
            Workload::Transfer,
            Workload::Registry,
            Workload::Nested,
        ] {
            let cfg = CheckConfig {
                workload,
                strategy: StrategyKind::Reorder,
                reorder_ns: 400,
                ttl_ns: 256,
                ..CheckConfig::default()
            };
            let text = write(&cfg);
            let parsed = parse(&text).expect("replay text must parse");
            assert_eq!(parsed, cfg);
            assert_eq!(write(&parsed), text, "re-serialization drifted");
        }
    }

    #[test]
    fn crash_knobs_round_trip_byte_identical() {
        // Every crash point × torn mode must survive parse → re-serialize
        // with no drift, so a minimised crash replay reproduces the exact
        // same torn tail bytes.
        for point in [
            CrashPoint::WalAppend,
            CrashPoint::PreCommit,
            CrashPoint::PostCommit,
            CrashPoint::MidRecord,
        ] {
            for torn in [None, Some(TornMode::Truncate), Some(TornMode::Flip)] {
                let cfg = CheckConfig {
                    workload: Workload::Durable,
                    crash: Some(CrashSpec { point, after: 12 }),
                    torn,
                    ..CheckConfig::default()
                };
                let text = write(&cfg);
                let parsed = parse(&text).expect("replay text must parse");
                assert_eq!(parsed, cfg);
                assert_eq!(write(&parsed), text, "re-serialization drifted");
            }
        }
        // Bare point: `after` defaults to 1.
        assert_eq!(
            parse_crash("pre-commit").unwrap(),
            CrashSpec {
                point: CrashPoint::PreCommit,
                after: 1
            }
        );
    }

    #[test]
    fn parses_comments_and_defaults() {
        let cfg = parse("# comment\nworkload=snzi\nseed=9\n").unwrap();
        assert_eq!(cfg.workload, Workload::Snzi);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.fault, None);
        assert_eq!(cfg.threads, CheckConfig::default().threads);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("workload=quantum\n").is_err());
        assert!(parse("nonsense\n").is_err());
        assert!(parse("bogus_key=1\n").is_err());
        assert!(parse("trace=maybe\n").is_err());
        assert!(parse_fault("begin:conflict").is_err());
        assert!(parse_fault("begin:conflict:x").is_err());
        assert!(parse_fault("begin:warp:3").is_err());
        assert!(parse_crash("reboot:1").is_err());
        assert!(parse_crash("wal-append:x").is_err());
        assert!(parse_crash("wal-append:0").is_err());
        assert!(parse_torn("rip").is_err());
        assert!(
            parse("workload=durable\ntorn=flip\n").is_err(),
            "torn without crash must be rejected"
        );
        assert!(parse("zipf_milli=heavy\n").is_err());
        assert!(parse("shards=0\n").is_err(), "zero shards must be rejected");
    }

    #[test]
    fn shard_knobs_round_trip_byte_identical() {
        // The sharded-map knobs (`--zipf` stored in milli-theta, `--shards`)
        // must survive parse → re-serialize with no drift, including the
        // uniform (0) and supra-unit skews the Zipf sampler special-cases.
        for (zipf_milli, shards) in [(0u64, 1usize), (990, 4), (1100, 8), (1500, 32)] {
            let cfg = CheckConfig {
                workload: Workload::Shard,
                zipf_milli,
                shards,
                ..CheckConfig::default()
            };
            let text = write(&cfg);
            assert!(text.contains(&format!("zipf_milli={zipf_milli}\n")));
            assert!(text.contains(&format!("shards={shards}\n")));
            let parsed = parse(&text).expect("replay text must parse");
            assert_eq!(parsed, cfg);
            assert_eq!(write(&parsed), text, "re-serialization drifted");
        }
    }
}
