//! `ale-check` — CLI for the dynamic checking harness.
//!
//! ```text
//! ale-check [--seeds N] [--strategy S] [--workload W] [--threads N]
//!           [--ops N] [--platform P] [--chaos NS] [--window NS]
//!           [--permille N] [--reorder NS] [--ttl NS]
//!           [--fault point:kind:every[:max_hits]]
//!           [--seed-base N] [--out DIR]
//! ale-check --replay FILE
//! ale-check selftest [--seeds N] [--out DIR]
//! ```
//!
//! The default mode sweeps seeds: each iteration runs every selected
//! workload under a fresh scheduler seed and checks all oracles. The first
//! violation is shrunk (see `minimize`) and written as a replay file; the
//! exit code is 1. A clean sweep prints a deterministic digest — re-running
//! the same command line must print the same digest, bit for bit.
//!
//! `selftest` proves the harness catches bugs: built with one `mut-*`
//! feature it must find a violation within the seed budget (exit 0 on
//! detection, 1 on escape); built clean it must find none.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ale_check::{
    active_mutation, minimize, replay, run_once, workload_for_mutation, CheckConfig, CrashSpec,
    Fnv, StrategyKind, Workload,
};
use ale_htm::{CrashPoint, TornMode};
use ale_vtime::PlatformKind;

struct Args {
    selftest: bool,
    replay_file: Option<PathBuf>,
    seeds: u64,
    seed_base: u64,
    strategies: Vec<StrategyKind>,
    workloads: Vec<Workload>,
    out_dir: PathBuf,
    base: CheckConfig,
}

fn usage() -> &'static str {
    "usage: ale-check [selftest] [--seeds N] [--strategy S|all] [--workload W|all|scenarios]\n\
     \t[--threads N] [--ops N] [--platform P] [--chaos NS] [--window NS]\n\
     \t[--permille N] [--reorder NS] [--ttl NS] [--zipf S] [--shards N]\n\
     \t[--fault point:kind:every[:max_hits]] [--seed-base N]\n\
     \t[--crash point[:after]] [--torn truncate|flip]\n\
     \t[--trace] [--out DIR] [--replay FILE]\n\
     strategies: lowest-clock random-walk preempt most-conflicting reorder\n\
     workloads:  hashmap kyoto bank snzi panic ttl queue transfer registry nested durable shard\n\
     \t(`scenarios` = the real-world pack: ttl queue transfer registry nested)\n\
     platforms:  testbed haswell rock t2\n\
     crash pts:  wal-append pre-commit post-commit mid-record (durable workload)\n\
     shard map:  --zipf S = Zipfian read skew theta (e.g. 1.1; 0 = uniform),\n\
     \t--shards N = shard count (power of two)"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        selftest: false,
        replay_file: None,
        seeds: 100,
        seed_base: 0,
        strategies: vec![StrategyKind::RandomWalk],
        workloads: Workload::ALL.to_vec(),
        out_dir: PathBuf::from("target/ale-check"),
        base: CheckConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "selftest" => args.selftest = true,
            "--replay" => args.replay_file = Some(PathBuf::from(value("--replay")?)),
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|_| "bad --seeds".to_string())?
            }
            "--seed-base" => {
                args.seed_base = value("--seed-base")?
                    .parse()
                    .map_err(|_| "bad --seed-base".to_string())?
            }
            "--strategy" => {
                let v = value("--strategy")?;
                args.strategies = if v == "all" {
                    StrategyKind::ALL.to_vec()
                } else {
                    vec![StrategyKind::parse(&v).ok_or(format!("unknown strategy `{v}`"))?]
                };
            }
            "--workload" => {
                let v = value("--workload")?;
                args.workloads = if v == "all" {
                    Workload::ALL.to_vec()
                } else if v == "scenarios" {
                    Workload::SCENARIOS.to_vec()
                } else {
                    vec![Workload::parse(&v).ok_or(format!("unknown workload `{v}`"))?]
                };
            }
            "--threads" => {
                args.base.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_string())?;
                if args.base.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--ops" => {
                args.base.ops = value("--ops")?
                    .parse()
                    .map_err(|_| "bad --ops".to_string())?
            }
            "--platform" => {
                let v = value("--platform")?;
                args.base.platform =
                    PlatformKind::parse(&v).ok_or(format!("unknown platform `{v}`"))?;
            }
            "--chaos" => {
                args.base.chaos_ns = value("--chaos")?
                    .parse()
                    .map_err(|_| "bad --chaos".to_string())?
            }
            "--window" => {
                args.base.window_ns = value("--window")?
                    .parse()
                    .map_err(|_| "bad --window".to_string())?
            }
            "--permille" => {
                args.base.permille = value("--permille")?
                    .parse()
                    .map_err(|_| "bad --permille".to_string())?
            }
            "--reorder" => {
                args.base.reorder_ns = value("--reorder")?
                    .parse()
                    .map_err(|_| "bad --reorder".to_string())?
            }
            "--ttl" => {
                args.base.ttl_ns = value("--ttl")?
                    .parse()
                    .map_err(|_| "bad --ttl".to_string())?;
                if args.base.ttl_ns == 0 {
                    return Err("--ttl must be >= 1".into());
                }
            }
            "--zipf" => {
                let theta: f64 = value("--zipf")?
                    .parse()
                    .map_err(|_| "bad --zipf".to_string())?;
                if !theta.is_finite() || theta < 0.0 {
                    return Err("--zipf must be a finite theta >= 0".into());
                }
                // Stored in milli-theta so replay files round-trip exactly.
                args.base.zipf_milli = (theta * 1000.0).round() as u64;
            }
            "--shards" => {
                args.base.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "bad --shards".to_string())?;
                if args.base.shards == 0 {
                    return Err("--shards must be >= 1".into());
                }
            }
            "--fault" => args.base.fault = Some(replay::parse_fault(&value("--fault")?)?),
            "--crash" => args.base.crash = Some(replay::parse_crash(&value("--crash")?)?),
            "--torn" => args.base.torn = Some(replay::parse_torn(&value("--torn")?)?),
            "--trace" => args.base.trace = true,
            "--out" => args.out_dir = PathBuf::from(value("--out")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if args.base.torn.is_some() && args.base.crash.is_none() {
        return Err(format!("--torn requires --crash\n{}", usage()));
    }
    Ok(args)
}

/// Config for iteration `i` of the sweep: workload seed and scheduler seed
/// both derived from the iteration index so every iteration is a distinct,
/// individually replayable schedule.
fn sweep_config(
    base: &CheckConfig,
    workload: Workload,
    strategy: StrategyKind,
    seed: u64,
) -> CheckConfig {
    CheckConfig {
        workload,
        strategy,
        seed,
        sched_seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_5EED,
        ..base.clone()
    }
}

/// Shrink a failing config, write the replay file, print the repro recipe.
fn report_failure(cfg: &CheckConfig, outcome: &ale_check::RunOutcome, out_dir: &Path) -> PathBuf {
    eprintln!(
        "FAIL {} strategy={} seed={}: {} violation(s)",
        cfg.workload.name(),
        cfg.strategy.name(),
        cfg.seed,
        outcome.violations.len()
    );
    for v in &outcome.violations {
        eprintln!("  - {v}");
    }
    let (final_cfg, note) = match minimize::minimize(cfg, outcome) {
        Some(min) => {
            eprintln!(
                "minimised in {} runs: perturb_limit {} -> {}{}{}{}",
                min.runs,
                outcome.decisions,
                min.config.perturb_limit,
                if cfg.reorder_ns > 0 {
                    format!(", reorder window -> {}ns", min.config.reorder_ns)
                } else {
                    String::new()
                },
                if cfg.workload == Workload::Shard && cfg.zipf_milli > 0 {
                    format!(", zipf -> {}m", min.config.zipf_milli)
                } else {
                    String::new()
                },
                min.config
                    .fault
                    .map(|f| format!(", fault budget -> {}", f.max_hits))
                    .unwrap_or_default()
            );
            if let Some(crash) = min.config.crash {
                eprintln!("  crash point -> {}", replay::crash_string(&crash));
            }
            (min.config, "minimised")
        }
        None => {
            eprintln!("warning: shrinking could not re-reproduce; writing the original schedule");
            (cfg.clone(), "unminimised")
        }
    };
    std::fs::create_dir_all(out_dir).ok();
    let path = out_dir.join(format!(
        "fail-{}-{}-seed{}.replay",
        final_cfg.workload.name(),
        final_cfg.strategy.name(),
        final_cfg.seed
    ));
    match std::fs::write(&path, replay::write(&final_cfg)) {
        Ok(()) => eprintln!(
            "{} replay written: {}\nreproduce with: cargo run -p ale-check -- --replay {}",
            note,
            path.display(),
            path.display()
        ),
        Err(e) => eprintln!("could not write replay file {}: {e}", path.display()),
    }
    path
}

fn run_replay(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match replay::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let outcome = run_once(&cfg);
    println!(
        "replay {} strategy={} seed={} sched_seed={}: digest {:016x}, {} decision(s), {} injected fault(s)",
        cfg.workload.name(),
        cfg.strategy.name(),
        cfg.seed,
        cfg.sched_seed,
        outcome.digest,
        outcome.decisions,
        outcome.injected
    );
    if cfg.crash.is_some() {
        println!(
            "crash: {}",
            if outcome.crashed {
                "fired (recovery verified by the durability oracle)"
            } else {
                "planned but did not fire"
            }
        );
    }
    if let Some(t) = &outcome.trace {
        println!(
            "trace: {} event(s), {} dropped, stream digest {:016x}",
            t.events.len(),
            t.dropped,
            t.digest()
        );
        print!("{}", ale_trace::scenario_mode_mix(&t.events));
        if cfg.workload == Workload::Shard {
            print!("{}", ale_trace::shard_mode_mix(&t.events));
        }
    }
    if outcome.failed() {
        println!("{} violation(s):", outcome.violations.len());
        for v in &outcome.violations {
            println!("  - {v}");
        }
        ExitCode::from(1)
    } else {
        println!("clean (no oracle violation under this schedule)");
        ExitCode::SUCCESS
    }
}

fn run_sweep(args: &Args) -> ExitCode {
    let mut digest = Fnv::new();
    let mut runs = 0u64;
    for seed in args.seed_base..args.seed_base + args.seeds {
        for &workload in &args.workloads {
            for &strategy in &args.strategies {
                let cfg = sweep_config(&args.base, workload, strategy, seed);
                let outcome = run_once(&cfg);
                runs += 1;
                digest.write_u64(outcome.digest);
                if outcome.failed() {
                    report_failure(&cfg, &outcome, &args.out_dir);
                    return ExitCode::from(1);
                }
            }
        }
    }
    println!(
        "clean: {} schedule(s) across {} workload(s) x {} strategy(ies), digest {:016x}",
        runs,
        args.workloads.len(),
        args.strategies.len(),
        digest.finish()
    );
    ExitCode::SUCCESS
}

fn run_selftest(args: &Args) -> ExitCode {
    match active_mutation() {
        None => {
            // Clean build: a modest sweep must stay clean.
            eprintln!("selftest (no mutation compiled in): expecting a clean sweep");
            let clean = Args {
                selftest: false,
                replay_file: None,
                seeds: args.seeds.min(25),
                seed_base: args.seed_base,
                strategies: vec![StrategyKind::RandomWalk, StrategyKind::MostConflicting],
                workloads: Workload::ALL.to_vec(),
                out_dir: args.out_dir.clone(),
                base: args.base.clone(),
            };
            run_sweep(&clean)
        }
        Some(mutation) => {
            let workload = workload_for_mutation(mutation);
            let mut base = args.base.clone();
            // The trace-drop mutation is invisible to the workload oracles;
            // only the trace-stream oracle can catch it.
            if mutation == "mut-trace-drop-event" {
                base.trace = true;
            }
            // The reordered publication only tears observably when the
            // weak-memory adversary holds stores in the window; arm it.
            if mutation == "mut-reorder-publish" && base.reorder_ns == 0 {
                base.reorder_ns = 400;
            }
            // The ack-before-durable record is only lost when a crash
            // lands while it sits parked in the volatile buffer; arm a
            // mid-run crash at a WAL append.
            if mutation == "mut-wal-ack-before-durable" && base.crash.is_none() {
                base.crash = Some(CrashSpec {
                    point: CrashPoint::WalAppend,
                    after: 40,
                });
            }
            // The skipped checksum only misleads recovery when the crash
            // leaves a bit-flipped (complete but corrupt) tail record.
            if mutation == "mut-recovery-skip-checksum" && base.crash.is_none() {
                base.crash = Some(CrashSpec {
                    point: CrashPoint::MidRecord,
                    after: 30,
                });
                base.torn = Some(TornMode::Flip);
            }
            eprintln!(
                "selftest: hunting `{mutation}` on the {} workload (budget {} seeds x {} strategies)",
                workload.name(),
                args.seeds,
                StrategyKind::ALL.len()
            );
            let mut schedules = 0u64;
            for seed in args.seed_base..args.seed_base + args.seeds {
                // All strategies take part — a detector that only works
                // under one scheduler is too fragile to trust.
                for strategy in StrategyKind::ALL {
                    let cfg = sweep_config(&base, workload, strategy, seed);
                    let outcome = run_once(&cfg);
                    schedules += 1;
                    if outcome.failed() {
                        eprintln!("selftest: `{mutation}` detected after {schedules} schedule(s)");
                        report_failure(&cfg, &outcome, &args.out_dir);
                        return ExitCode::SUCCESS;
                    }
                }
            }
            eprintln!(
                "selftest FAILED: `{mutation}` escaped {schedules} schedule(s) — the oracles are too weak"
            );
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay_file {
        return run_replay(path);
    }
    if args.selftest {
        return run_selftest(&args);
    }
    run_sweep(&args)
}
