//! Panicking critical sections in all three modes: after every caught
//! unwind the runtime must have closed the panicker's conflicting regions
//! (seqlock parity restored), left no transaction open, and — for Lock
//! mode — poisoned the lock until explicit recovery.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ale_core::{scope, Ale, AleConfig, CsOptions, CsOutcome, ExecMode, LockPoison, StaticPolicy};
use ale_htm::{HtmCell, InjectedPanic};
use ale_sync::{SeqVersion, SpinLock};
use ale_vtime::{tick, Event};

use super::{lane_rng, sim_for, Violations, WorkloadOutcome, INITIAL_BALANCE};
use crate::{CheckConfig, Fnv};

/// Which mode a panic op targets, rotating over the run.
fn panic_target(op: u64) -> ExecMode {
    match (op / 16) % 3 {
        0 => ExecMode::Lock,
        1 => ExecMode::Htm,
        _ => ExecMode::SwOpt,
    }
}

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    ale_core::init_panic_hook();
    let total = 2 * INITIAL_BALANCE;
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform())
            .with_seed(cfg.seed)
            .with_stall_watchdog(50_000),
        StaticPolicy::new(3, 3),
    );
    let lock = ale.new_lock("panicLock", SpinLock::new());
    let ver = SeqVersion::new();
    let a = HtmCell::new(INITIAL_BALANCE);
    let b = HtmCell::new(INITIAL_BALANCE);

    let violations = Violations::new();
    let v = &violations;
    let lock_ref = &lock;
    let (ver_ref, a_ref, b_ref) = (&ver, &a, &b);
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut panics = 0u64;
        for op in 0..cfg.ops {
            // Only lane 0 throws Lock-mode panics: a Lock-mode panic poisons
            // the lock, and a single poisoner makes the poisoned-then-
            // recovered oracle sound (nobody else clears the flag).
            let target = panic_target(op);
            let boom =
                op % 16 == 7 && !(target == ExecMode::Lock && id != 0) && rng.gen_ratio(3, 4);
            let ran = catch_unwind(AssertUnwindSafe(|| match target {
                ExecMode::Lock => {
                    // Lock-mode transfer with a panic window *inside* the
                    // conflicting region (worst case for seqlock parity).
                    let amount = 1 + rng.gen_range(5);
                    lock_ref.cs_plain(
                        scope!("panic::transfer"),
                        CsOptions::new().without_htm(),
                        |_| {
                            ver_ref.begin_conflicting_action();
                            if boom {
                                std::panic::panic_any(InjectedPanic);
                            }
                            let from = a_ref.get();
                            if from >= amount {
                                a_ref.set(from - amount);
                                tick(Event::LocalWork(200));
                                b_ref.set(b_ref.get() + amount);
                            }
                            ver_ref.end_conflicting_action();
                        },
                    );
                }
                ExecMode::Htm => {
                    // Audit, preferably in HTM; a panicking attempt first
                    // dirties an account so a surviving speculative write
                    // would break the conservation oracle.
                    let sum = lock_ref.cs_plain(scope!("panic::audit"), CsOptions::new(), |cs| {
                        if boom && cs.mode() == ExecMode::Htm {
                            a_ref.set(0);
                            std::panic::panic_any(InjectedPanic);
                        }
                        a_ref.get() + b_ref.get()
                    });
                    if sum != total {
                        v.record(format!("panic: audit observed sum {sum}, expected {total}"));
                    }
                }
                ExecMode::SwOpt => {
                    // Versioned optimistic read with bounded retries (an odd
                    // version fails the attempt instead of spinning, so a
                    // leaked region degrades throughput, never liveness).
                    lock_ref.cs(
                        scope!("panic::read"),
                        CsOptions::new().with_swopt().non_conflicting(),
                        |cs| -> CsOutcome<u64> {
                            if cs.is_swopt() {
                                let v0 = ver_ref.read(false);
                                if v0 % 2 == 1 {
                                    return CsOutcome::SwOptFail;
                                }
                                if boom {
                                    std::panic::panic_any(InjectedPanic);
                                }
                                let sum = a_ref.get() + b_ref.get();
                                if ver_ref.read(false) != v0 {
                                    return CsOutcome::SwOptFail;
                                }
                                if sum != total {
                                    v.record(format!(
                                        "panic: validated SWOpt read saw sum {sum}, expected {total}"
                                    ));
                                }
                                CsOutcome::Done(sum)
                            } else {
                                CsOutcome::Done(a_ref.get() + b_ref.get())
                            }
                        },
                    );
                }
            }));

            if let Err(payload) = ran {
                if payload.downcast_ref::<InjectedPanic>().is_some() {
                    panics += 1;
                    // Unwind-safety oracles, sound lane-locally: whatever
                    // regions THIS lane's panicking body left open must have
                    // been closed on the way out.
                    let open = ale_sync::open_region_count();
                    if open != 0 {
                        v.record(format!(
                            "panic: {open} conflicting region(s) leaked across a caught panic"
                        ));
                    }
                    if target == ExecMode::Lock {
                        if !lock_ref.is_poisoned() {
                            v.record("panic: Lock-mode panic did not poison the lock".into());
                        }
                        lock_ref.clear_poison();
                        // Recovery must actually work: a follow-up section
                        // (any mode) has to complete.
                        let redo = catch_unwind(AssertUnwindSafe(|| {
                            lock_ref.cs_plain(scope!("panic::recover"), CsOptions::new(), |_| {
                                a_ref.get() + b_ref.get()
                            })
                        }));
                        match redo {
                            Ok(sum) if sum != total => v.record(format!(
                                "panic: post-recovery audit saw sum {sum}, expected {total}"
                            )),
                            Err(p) if p.downcast_ref::<LockPoison>().is_none() => {
                                v.record("panic: post-recovery section panicked".into())
                            }
                            _ => {}
                        }
                    }
                } else if payload.downcast_ref::<LockPoison>().is_some() {
                    // Another lane's Lock-mode panic poisoned the lock while
                    // we were entering; skip the op and let it recover.
                    tick(Event::LocalWork(100));
                } else {
                    v.record("panic: unexpected panic payload escaped a critical section".into());
                }
            }
            tick(Event::LocalWork(1 + rng.gen_range(120)));
        }
        // Nothing this lane opened may outlive it.
        if ale_sync::open_region_count() != 0 {
            v.record(format!(
                "panic: lane {id} ended with conflicting regions still open"
            ));
        }
        panics
    });

    let final_sum = a.get() + b.get();
    if final_sum != total {
        violations.record(format!(
            "panic: final sum {final_sum} != {total} (partial transfer survived a panic)"
        ));
    }
    if ver.read(false) % 2 == 1 {
        violations.record("panic: version word left odd after quiescence".into());
    }
    if lock.is_poisoned() {
        violations.record("panic: lock left poisoned after every panic was recovered".into());
    }

    let mut h = Fnv::new();
    for panics in &report.results {
        h.write_u64(*panics);
    }
    h.write_u64(final_sum);
    h.write_u64(ver.read(false));
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
