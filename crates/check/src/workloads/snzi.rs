//! SNZI arrive/depart storm: the indicator must never read empty while a
//! surplus exists.

use ale_sync::Snzi;
use ale_vtime::{tick, Event};

use super::{lane_rng, sim_for, Violations, WorkloadOutcome};
use crate::{CheckConfig, Fnv};

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    let snzi = Snzi::new(3);
    let violations = Violations::new();
    let v = &violations;
    let snzi_ref = &snzi;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut arrivals = 0u64;
        for i in 0..cfg.ops {
            let guard = snzi_ref.arrive_at(id * 7 + i as usize);
            arrivals += 1;
            // Sound under any interleaving: our own arrival is outstanding,
            // so the surplus is provably nonzero right now.
            if !snzi_ref.query() {
                v.record(format!(
                    "snzi: query() returned empty while lane {id} held an arrival (under-count)"
                ));
            }
            tick(Event::LocalWork(1 + rng.gen_range(200)));
            drop(guard);
        }
        arrivals
    });

    if snzi.query() {
        violations.record("snzi: indicator still nonzero after every arrival departed".into());
    }

    let mut h = Fnv::new();
    for arrivals in &report.results {
        h.write_u64(*arrivals);
    }
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
