//! The Kyoto CacheDB: nested RW-lock + slot-lock critical sections, all
//! three modes.

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_kyoto::{AleCacheDb, DbConfig, KyotoDb};
use ale_vtime::{tick, Event};

use super::shadow::{KvShadow, ShadowModel};
use super::{
    churn_key, encode, integrity_ok, lane_rng, sim_for, Violations, WorkloadOutcome,
    CHURN_PER_LANE, STABLE_COUNT, STABLE_KEYS,
};
use crate::{CheckConfig, Fnv};

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform()).with_seed(cfg.seed),
        StaticPolicy::new(3, 10),
    );
    let db = AleCacheDb::new(
        &ale,
        DbConfig {
            buckets_per_slot: 64,
            capacity_per_slot: 1 << 12,
            payload_cells: 2,
        },
    );
    for key in STABLE_KEYS {
        db.set(key, encode(key, 0));
    }

    let violations = Violations::new();
    let v = &violations;
    let db_ref = &db;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut shadow = KvShadow::new();
        let threads = cfg.threads as u64;
        for op in 0..cfg.ops {
            if op % 64 == 63 {
                // Occasional whole-database count: the paper's "relatively
                // large hardware transaction". Racy by nature mid-run; the
                // only invariant here is that it terminates and is sane.
                let n = db_ref.count();
                let ceiling = STABLE_COUNT + cfg.threads * CHURN_PER_LANE;
                if n > ceiling {
                    v.record(format!("kyoto: count() returned {n} > ceiling {ceiling}"));
                }
                continue;
            }
            match rng.gen_range(10) {
                0..=4 => {
                    let key = if rng.gen_ratio(1, 2) {
                        STABLE_KEYS.start + rng.gen_range(STABLE_KEYS.end - STABLE_KEYS.start)
                    } else {
                        churn_key(
                            rng.gen_range(threads) as usize,
                            rng.gen_range(CHURN_PER_LANE as u64) as usize,
                        )
                    };
                    match db_ref.get(key) {
                        Some(val) if !integrity_ok(key, val) => v.record(format!(
                            "kyoto: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                            val & 0xFFFF
                        )),
                        Some(val) if STABLE_KEYS.contains(&key) && val != encode(key, 0) => v
                            .record(format!(
                                "kyoto: stable key {key:#x} value changed to {val:#x}"
                            )),
                        None if STABLE_KEYS.contains(&key) => {
                            v.record(format!("kyoto: stable key {key:#x} reported absent"))
                        }
                        _ => {}
                    }
                }
                5 | 6 => {
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let expect_newly = !shadow.present[j];
                    let val = encode(key, shadow.generation[j] + 1);
                    shadow.insert(j, val);
                    let newly = db_ref.set(key, val);
                    if newly != expect_newly {
                        v.record(format!(
                            "kyoto: set({key:#x}) returned newly={newly} but shadow says newly={expect_newly}"
                        ));
                    }
                }
                7 | 8 => {
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let was = db_ref.remove(key);
                    if was != shadow.remove(j) {
                        v.record(format!(
                            "kyoto: remove({key:#x}) returned {was} but shadow says present={}",
                            !was
                        ));
                    }
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(300))),
            }
        }
        shadow
    });

    let mut expected = STABLE_COUNT;
    for (id, shadow) in report.results.iter().enumerate() {
        for j in 0..CHURN_PER_LANE {
            let key = churn_key(id, j);
            let found = db.get(key);
            match (found, shadow.present[j]) {
                (Some(val), true) if val != shadow.value[j] => violations.record(format!(
                    "kyoto: final value of {key:#x} is {val:#x}, owner shadow says {:#x} (lost update)",
                    shadow.value[j]
                )),
                (None, true) => violations.record(format!(
                    "kyoto: final state of {key:#x} is absent, owner shadow says present"
                )),
                (Some(_), false) => violations.record(format!(
                    "kyoto: final state of {key:#x} is present, owner shadow says absent"
                )),
                _ => {}
            }
            expected += shadow.present[j] as usize;
        }
    }
    for key in STABLE_KEYS {
        if db.get(key).is_none() {
            violations.record(format!("kyoto: stable key {key:#x} absent after the run"));
        }
    }
    let n = db.count();
    if n != expected {
        violations.record(format!(
            "kyoto: count() is {n}, owner shadows total {expected}"
        ));
    }
    if !db.versions_even() {
        violations.record("kyoto: a slot version was left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    for shadow in &report.results {
        shadow.fold(&mut h);
    }
    h.write_u64(n as u64);
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
