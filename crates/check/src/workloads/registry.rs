//! Read-mostly registry with rare bulk updates: a single updater lane
//! occasionally bumps a global epoch and rewrites every entry at the new
//! generation; every other op is a read.
//!
//! The epoch lives in a [`SeqBuffer`] — a multi-word seqlock-published
//! block — and readers bracket each registry lookup with two epoch
//! snapshots. Oracles:
//!
//! * a validated epoch snapshot is never **torn** (all four words equal) —
//!   the check that catches `mut-reorder-publish`, where the buffer's data
//!   writes are reordered ahead of its version bump;
//! * epochs are **monotone** across the two snapshots;
//! * an entry's generation is bounded by the bracketing epochs
//!   (`e1 - 1 ≤ gen ≤ e2`): with one sequential updater, epoch `e` is
//!   published before the rewrite at `e` starts, so a lookup racing the
//!   rewrite sees generation `e-1` or `e`, never older or newer.

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_hashmap::{AleHashMap, MapConfig};
use ale_sync::SeqBuffer;
use ale_vtime::{tick, Event};

use super::{encode, integrity_ok, lane_rng, sim_for, Violations, WorkloadOutcome};
use crate::{CheckConfig, Fnv};

/// Fixed key set: the registry's membership never changes, only the
/// generation stamped into each value.
const REG_KEYS: std::ops::Range<u64> = 1..13;
const REG_KEY_COUNT: usize = 12;

#[derive(Clone, Copy, Default)]
struct LaneOut {
    epochs: u64,
    reads: u64,
}

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    // Read-mostly tuning: few HTM attempts, a deep SWOpt budget — lookups
    // should almost always complete optimistically.
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform()).with_seed(cfg.seed),
        StaticPolicy::new(2, 8),
    );
    let map = AleHashMap::new(&ale, MapConfig::new(8).with_capacity(1 << 14));
    let epoch_block: SeqBuffer<4> = SeqBuffer::new();
    for key in REG_KEYS {
        map.insert(key, encode(key, 0));
    }

    let violations = Violations::new();
    let v = &violations;
    let (map_ref, block_ref) = (&map, &epoch_block);
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut out = LaneOut::default();
        let mut epoch = 0u64;
        for op in 0..cfg.ops {
            // Lane 0 is the sole updater: publish the new epoch, then
            // rewrite the whole registry at that generation.
            if id == 0 && op % 24 == 23 {
                epoch += 1;
                block_ref.store([epoch; 4]);
                for key in REG_KEYS {
                    map_ref.insert(key, encode(key, epoch));
                }
                out.epochs = epoch;
                continue;
            }
            match rng.gen_range(10) {
                0..=6 => {
                    // Coherent read: epoch snapshot, lookup, epoch snapshot.
                    let b1 = block_ref.load();
                    if !(b1[0] == b1[1] && b1[1] == b1[2] && b1[2] == b1[3]) {
                        v.record(format!(
                            "registry: torn epoch block {b1:?} survived seqlock validation"
                        ));
                    }
                    let key = REG_KEYS.start + rng.gen_range(REG_KEY_COUNT as u64);
                    let mut val = 0u64;
                    if !map_ref.get(key, &mut val) {
                        v.record(format!("registry: key {key:#x} reported absent"));
                        continue;
                    }
                    if !integrity_ok(key, val) {
                        v.record(format!(
                            "registry: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                            val & 0xFFFF
                        ));
                        continue;
                    }
                    let gen = val >> 16;
                    let b2 = block_ref.load();
                    if !(b2[0] == b2[1] && b2[1] == b2[2] && b2[2] == b2[3]) {
                        v.record(format!(
                            "registry: torn epoch block {b2:?} survived seqlock validation"
                        ));
                    }
                    if b2[0] < b1[0] {
                        v.record(format!(
                            "registry: epoch went backwards ({} then {})",
                            b1[0], b2[0]
                        ));
                    }
                    if gen + 1 < b1[0] || gen > b2[0] {
                        v.record(format!(
                            "registry: key {key:#x} at generation {gen} outside epoch \
                             bracket [{} - 1, {}]",
                            b1[0], b2[0]
                        ));
                    }
                    out.reads += 1;
                }
                7 | 8 => {
                    // Integrity-only read (no epoch bracketing).
                    let key = REG_KEYS.start + rng.gen_range(REG_KEY_COUNT as u64);
                    let mut val = 0u64;
                    if map_ref.get(key, &mut val) && !integrity_ok(key, val) {
                        v.record(format!(
                            "registry: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                            val & 0xFFFF
                        ));
                    }
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(200))),
            }
        }
        out
    });

    // Quiescence: the last published epoch is consistent everywhere.
    let final_epoch = report.results.first().map_or(0, |o| o.epochs);
    let block = epoch_block.load();
    if block != [final_epoch; 4] {
        violations.record(format!(
            "registry: final epoch block {block:?} != [{final_epoch}; 4]"
        ));
    }
    for key in REG_KEYS {
        let mut val = 0u64;
        if !map.get(key, &mut val) {
            violations.record(format!("registry: key {key:#x} missing at quiescence"));
        } else if val != encode(key, final_epoch) {
            violations.record(format!(
                "registry: key {key:#x} ended at {val:#x}, expected generation {final_epoch}"
            ));
        }
    }
    if !map.versions_even() {
        violations.record("registry: a version word was left odd after quiescence".into());
    }
    if epoch_block.version().read(false) % 2 == 1 {
        violations.record("registry: epoch block version left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    h.write_u64(final_epoch);
    for out in &report.results {
        h.write_u64(out.epochs);
        h.write_u64(out.reads);
    }
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
