//! Bounded producer-consumer ring: even lanes produce, odd lanes consume.
//!
//! Items pack `(producer << 48) | seq`, so every observation is traceable
//! to its source. Three oracle tiers, each sound without a centralized
//! concurrent model:
//!
//! * **During the run, per consumer** — the queue is a single global FIFO
//!   (all mutations under one lock), so each producer's items leave it in
//!   sequence order, and any one consumer's takes of that producer form a
//!   strictly increasing subsequence.
//! * **During the run, SWOpt length probes** — a validated `(head, tail)`
//!   snapshot must satisfy `head ≤ tail ≤ head + CAP`.
//! * **At quiescence** — drain + consumed items must form *exactly* the
//!   multiset `{0 .. produced_p}` per producer: nothing lost, nothing
//!   duplicated, nothing invented ([`QueueShadow`] is the sequential
//!   truth the property tests pin this against).

use ale_core::{scope, Ale, AleConfig, CsOptions, CsOutcome, StaticPolicy};
use ale_htm::HtmCell;
use ale_sync::{SeqVersion, SpinLock};
use ale_vtime::{tick, Event};

use super::{lane_rng, sim_for, Violations, WorkloadOutcome};
use crate::{CheckConfig, Fnv};

/// Ring capacity: small enough that both full and empty edges are hit
/// constantly.
const QCAP: u64 = 8;

/// The subject: a lock-protected ring with monotone head/tail counters
/// and a conflicting-region bracket around every mutation, so SWOpt
/// length probes validate against in-flight slot writes.
struct BoundedQueue {
    slots: Vec<HtmCell<u64>>,
    /// Next item to pop (monotone).
    head: HtmCell<u64>,
    /// Next slot to fill (monotone).
    tail: HtmCell<u64>,
    ver: SeqVersion,
}

impl BoundedQueue {
    fn new() -> Self {
        BoundedQueue {
            slots: (0..QCAP).map(|_| HtmCell::new(0)).collect(),
            head: HtmCell::new(0),
            tail: HtmCell::new(0),
            ver: SeqVersion::new(),
        }
    }
}

fn pack(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 48) | seq
}

fn unpack(item: u64) -> (usize, u64) {
    ((item >> 48) as usize, item & 0xFFFF_FFFF_FFFF)
}

#[derive(Clone, Default)]
struct LaneOut {
    produced: u64,
    rejected: u64,
    consumed: Vec<u64>,
    probes: u64,
}

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform()).with_seed(cfg.seed),
        StaticPolicy::new(3, 6),
    );
    let lock = ale.new_lock("queueLock", SpinLock::new());
    let q = BoundedQueue::new();

    let violations = Violations::new();
    let v = &violations;
    let (lock_ref, q_ref) = (&lock, &q);
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut out = LaneOut::default();
        // Strictly increasing per-producer watermark for this consumer.
        let mut last_seq: Vec<Option<u64>> = vec![None; cfg.threads];
        for _ in 0..cfg.ops {
            match rng.gen_range(10) {
                0..=6 if id % 2 == 0 => {
                    // Produce (non-blocking: a full ring counts a rejection).
                    let item = pack(id, out.produced);
                    let accepted = lock_ref.cs_plain(
                        scope!("queue::enqueue"),
                        CsOptions::new(),
                        |_| {
                            let h = q_ref.head.get();
                            let t = q_ref.tail.get();
                            if t - h >= QCAP {
                                return false;
                            }
                            q_ref.ver.begin_conflicting_action();
                            q_ref.slots[(t % QCAP) as usize].set(item);
                            q_ref.tail.set(t + 1);
                            q_ref.ver.end_conflicting_action();
                            true
                        },
                    );
                    if accepted {
                        out.produced += 1;
                    } else {
                        out.rejected += 1;
                    }
                }
                0..=6 => {
                    // Consume.
                    let took = lock_ref.cs_plain(
                        scope!("queue::dequeue"),
                        CsOptions::new(),
                        |_| {
                            let h = q_ref.head.get();
                            let t = q_ref.tail.get();
                            if t == h {
                                return None;
                            }
                            let item = q_ref.slots[(h % QCAP) as usize].get();
                            q_ref.ver.begin_conflicting_action();
                            q_ref.head.set(h + 1);
                            q_ref.ver.end_conflicting_action();
                            Some(item)
                        },
                    );
                    if let Some(item) = took {
                        let (p, seq) = unpack(item);
                        if p >= cfg.threads || p % 2 != 0 {
                            v.record(format!(
                                "queue: dequeued item {item:#x} from impossible producer {p}"
                            ));
                        } else {
                            if let Some(l) = last_seq[p] {
                                if seq <= l {
                                    v.record(format!(
                                        "queue: producer {p} seq {seq} after {l} (FIFO order broken)"
                                    ));
                                }
                            }
                            last_seq[p] = Some(seq);
                        }
                        out.consumed.push(item);
                    }
                }
                7 | 8 => {
                    // SWOpt length probe: a validated snapshot must respect
                    // the capacity bound.
                    let snap = lock_ref.cs(
                        scope!("queue::len"),
                        CsOptions::new().with_swopt().non_conflicting(),
                        |cs| -> CsOutcome<(u64, u64)> {
                            if cs.is_swopt() {
                                let s = q_ref.ver.read(false);
                                if s % 2 == 1 {
                                    return CsOutcome::SwOptFail;
                                }
                                let h = q_ref.head.get();
                                let t = q_ref.tail.get();
                                if !q_ref.ver.validate(s) {
                                    return CsOutcome::SwOptFail;
                                }
                                CsOutcome::Done((h, t))
                            } else {
                                CsOutcome::Done((q_ref.head.get(), q_ref.tail.get()))
                            }
                        },
                    );
                    let (h, t) = snap;
                    if t < h || t - h > QCAP {
                        v.record(format!(
                            "queue: validated snapshot head={h} tail={t} breaks 0 ≤ len ≤ {QCAP}"
                        ));
                    }
                    out.probes += 1;
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(200))),
            }
        }
        out
    });

    // Quiescent accounting: drain the ring, then every produced item must
    // appear exactly once across consumers + drain.
    let mut drained = Vec::new();
    {
        let h = q.head.get();
        let t = q.tail.get();
        if t < h || t - h > QCAP {
            violations.record(format!(
                "queue: final head={h} tail={t} breaks the capacity bound"
            ));
        } else {
            for i in h..t {
                drained.push(q.slots[(i % QCAP) as usize].get());
            }
        }
    }
    let produced: Vec<u64> = report.results.iter().map(|o| o.produced).collect();
    let mut seen: Vec<Vec<bool>> = produced.iter().map(|&n| vec![false; n as usize]).collect();
    for item in report
        .results
        .iter()
        .flat_map(|o| o.consumed.iter())
        .chain(drained.iter())
    {
        let (p, seq) = unpack(*item);
        if p >= cfg.threads || seq >= produced[p] {
            violations.record(format!(
                "queue: item {item:#x} was never produced (producer {p}, seq {seq})"
            ));
        } else if std::mem::replace(&mut seen[p][seq as usize], true) {
            violations.record(format!(
                "queue: item {item:#x} observed twice (duplicated element)"
            ));
        }
    }
    for (p, seen_p) in seen.iter().enumerate() {
        let missing = seen_p.iter().filter(|&&s| !s).count();
        if missing > 0 {
            violations.record(format!(
                "queue: {missing} item(s) from producer {p} vanished (lost enqueue)"
            ));
        }
    }
    if q.ver.read(false) % 2 == 1 {
        violations.record("queue: version word left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    for out in &report.results {
        h.write_u64(out.produced);
        h.write_u64(out.rejected);
        h.write_u64(out.probes);
        h.write_u64(out.consumed.len() as u64);
        for &item in &out.consumed {
            h.write_u64(item);
        }
    }
    for &item in &drained {
        h.write_u64(item);
    }
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
