//! Nested compound operations: a transfer *inside* a cache fill, i.e. an
//! inner critical section on a second lock opened while the outer one is
//! held, with conflicting regions open on both layers at once.
//!
//! This is the workload that leans on the grouping SNZI and the nesting
//! rules: the outer section's conflicting region (cache version) must
//! stay open across the inner section (account version), and unwinding
//! either must restore both parities. Lock order is strictly outer →
//! inner, so the schedule adversary can't manufacture a deadlock.
//!
//! Oracles: SWOpt audits of the inner accounts (conservation), SWOpt
//! reads of the outer cache slots (integrity + generation monotonicity
//! via the owner shadow at quiescence), and both version words even at
//! the end.

use ale_core::{scope, Ale, AleConfig, CsOptions, CsOutcome, StaticPolicy};
use ale_htm::HtmCell;
use ale_sync::{SeqVersion, SpinLock};
use ale_vtime::{tick, Event};

use super::{
    encode, integrity_ok, lane_rng, sim_for, Violations, WorkloadOutcome, INITIAL_BALANCE,
};
use crate::{CheckConfig, Fnv};

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    let total = 2 * INITIAL_BALANCE;
    // Grouping stays on (default config): the nested sections are exactly
    // what the grouping SNZI exists to arbitrate.
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform()).with_seed(cfg.seed),
        StaticPolicy::new(2, 4),
    );
    let cache_lock = ale.new_lock("nestedCacheLock", SpinLock::new());
    let acct_lock = ale.new_lock("nestedAcctLock", SpinLock::new());
    let ver_cache = SeqVersion::new();
    let ver_acct = SeqVersion::new();
    // One cache slot per lane (owner-shadowed: each lane writes only its own).
    let slots: Vec<HtmCell<u64>> = (0..cfg.threads)
        .map(|id| HtmCell::new(encode(id as u64, 0)))
        .collect();
    let x = HtmCell::new(INITIAL_BALANCE);
    let y = HtmCell::new(INITIAL_BALANCE);

    let violations = Violations::new();
    let v = &violations;
    let (outer, inner) = (&cache_lock, &acct_lock);
    let (vc, va) = (&ver_cache, &ver_acct);
    let (slots_ref, x_ref, y_ref) = (&slots, &x, &y);
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut gen = 0u64;
        let threads = cfg.threads as u64;
        for _ in 0..cfg.ops {
            match rng.gen_range(10) {
                0..=3 => {
                    // Compound op: refresh our cache slot, and while the
                    // outer section (and its conflicting region) is still
                    // open, run a transfer in an inner section on the
                    // second lock.
                    let amount = 1 + rng.gen_range(3);
                    outer.cs_plain(scope!("nested::fill"), CsOptions::new(), |_| {
                        vc.begin_conflicting_action();
                        slots_ref[id].set(encode(id as u64, gen + 1));
                        inner.cs_plain(scope!("nested::transfer"), CsOptions::new(), |_| {
                            va.begin_conflicting_action();
                            let (from, to) = if x_ref.get() >= amount {
                                (x_ref, y_ref)
                            } else {
                                (y_ref, x_ref)
                            };
                            let f = from.get();
                            if f >= amount {
                                from.set(f - amount);
                                tick(Event::LocalWork(150));
                                to.set(to.get() + amount);
                            }
                            va.end_conflicting_action();
                        });
                        vc.end_conflicting_action();
                    });
                    gen += 1;
                }
                4..=6 => {
                    // Inner-layer audit: validated optimistic sum of the
                    // two accounts must conserve the total.
                    let sum = inner.cs(
                        scope!("nested::audit"),
                        CsOptions::new().with_swopt().non_conflicting(),
                        |cs| -> CsOutcome<u64> {
                            if cs.is_swopt() {
                                let s = va.read(false);
                                if s % 2 == 1 {
                                    return CsOutcome::SwOptFail;
                                }
                                let sum = x_ref.get() + y_ref.get();
                                if !va.validate(s) {
                                    return CsOutcome::SwOptFail;
                                }
                                CsOutcome::Done(sum)
                            } else {
                                CsOutcome::Done(x_ref.get() + y_ref.get())
                            }
                        },
                    );
                    if sum != total {
                        v.record(format!(
                            "nested: audit observed sum {sum}, expected {total} \
                             (inner transfer torn across the nesting)"
                        ));
                    }
                }
                7 | 8 => {
                    // Outer-layer read: a validated snapshot of any lane's
                    // cache slot must carry that lane's integrity bits.
                    let peer = rng.gen_range(threads) as usize;
                    let got = outer.cs(
                        scope!("nested::read"),
                        CsOptions::new().with_swopt().non_conflicting(),
                        |cs| -> CsOutcome<u64> {
                            if cs.is_swopt() {
                                let s = vc.read(false);
                                if s % 2 == 1 {
                                    return CsOutcome::SwOptFail;
                                }
                                let val = slots_ref[peer].get();
                                if !vc.validate(s) {
                                    return CsOutcome::SwOptFail;
                                }
                                CsOutcome::Done(val)
                            } else {
                                CsOutcome::Done(slots_ref[peer].get())
                            }
                        },
                    );
                    if !integrity_ok(peer as u64, got) {
                        v.record(format!(
                            "nested: slot {peer} read value {got:#x} belonging to slot {:#x}",
                            got & 0xFFFF
                        ));
                    }
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(250))),
            }
        }
        gen
    });

    // Quiescence: conservation, owner-shadowed slot generations, parity.
    let final_sum = x.get() + y.get();
    if final_sum != total {
        violations.record(format!(
            "nested: final sum {final_sum} != {total} (conservation broken)"
        ));
    }
    for (id, gen) in report.results.iter().enumerate() {
        let val = slots[id].get();
        if val != encode(id as u64, *gen) {
            violations.record(format!(
                "nested: slot {id} ended at {val:#x}, owner shadow says generation {gen}"
            ));
        }
    }
    if ver_cache.read(false) % 2 == 1 {
        violations.record("nested: cache version word left odd after quiescence".into());
    }
    if ver_acct.read(false) % 2 == 1 {
        violations.record("nested: account version word left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    h.write_u64(x.get());
    h.write_u64(y.get());
    for gen in &report.results {
        h.write_u64(*gen);
    }
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
