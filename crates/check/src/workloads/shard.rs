//! The sharded, incrementally-resizable map: SWOpt readers racing
//! Lock-mode mutators *and* live chain migrations across shard boundaries.
//!
//! The configuration is chosen to keep migrations in flight for most of
//! the run: two buckets per shard trip the load-factor trigger almost
//! immediately, and piggyback migration is disabled
//! (`migrate_steps_per_op = 0`) so chains move only when a lane draws the
//! explicit migrate-step op — each one an elided critical section racing
//! every concurrent optimistic lookup.
//!
//! Oracles, in the order they catch the compile-gated mutations:
//!
//! * **Torn lookup** (`mut-resize-skip-republish`): stable keys are
//!   inserted before the run and never mutated, so *any* read reporting
//!   one absent — e.g. an optimistic reader overlapping a chain splice
//!   whose version bump came too late — is a violation. Own-key reads
//!   check exact read-your-writes against the owner shadow.
//! * **Lost key** (`mut-shard-route-stale`): every insert is immediately
//!   re-read through the public lookup path; a key routed into a bucket
//!   the (correctly-masked) lookup never visits fails right there, and
//!   again at the quiescent final-state sweep.
//! * **Cursor monotonicity**: lanes poll each shard's published
//!   `[cur, prev, cursor, epoch]` and require the epoch to never regress
//!   and the cursor to never move backwards within an epoch.
//! * **Count parity**: at quiescence every shard's `HtmCell` counter must
//!   equal a locked enumeration of both its tables, and the total must
//!   equal stable keys + the owner shadows' net insertions.
//!
//! Reads draw keys Zipf(θ)-skewed when `--zipf` is set (θ =
//! `zipf_milli`/1000): rank 0 is the hottest *stable* key, so skew piles
//! optimistic readers onto exactly the chains migrations splice.

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_hashmap::{AleShardedMap, ShardedMapConfig};
use ale_vtime::{tick, Event, Zipf};

use super::shadow::{ShadowModel, ShardShadow, SHARD_SLOTS};
use super::{
    encode, integrity_ok, lane_rng, sim_for, Violations, WorkloadOutcome, STABLE_COUNT, STABLE_KEYS,
};
use crate::{CheckConfig, Fnv};

/// Lane-owned keys, disjoint from [`STABLE_KEYS`] and spread across
/// shards by the Fibonacci router.
fn slot_key(lane: usize, j: usize) -> u64 {
    0x1000 + (lane as u64) * SHARD_SLOTS as u64 + j as u64
}

/// The read key space: stable keys first (so Zipf rank 0 lands on a
/// never-mutated key), then every lane's owned slots.
fn read_key(rank: u64) -> u64 {
    if rank < STABLE_COUNT as u64 {
        STABLE_KEYS.start + rank
    } else {
        let r = rank - STABLE_COUNT as u64;
        slot_key(
            (r / SHARD_SLOTS as u64) as usize,
            (r % SHARD_SLOTS as u64) as usize,
        )
    }
}

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    // SWOpt vs Lock focus, as in the single-lock hashmap workload: HTM off
    // so optimistic reads take the seqlock path while mutations and
    // migration steps run under the shard lock. Two buckets per shard keep
    // chains long and trip resizes almost immediately; piggyback migration
    // is off so the explicit migrate-step op is the only thing draining a
    // migration — they stay live across most of the schedule.
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform())
            .without_htm()
            .with_seed(cfg.seed),
        StaticPolicy::new(0, 6),
    );
    let map: AleShardedMap<u64> = AleShardedMap::new(
        &ale,
        ShardedMapConfig::new(cfg.shards)
            .with_buckets_per_shard(2)
            .with_capacity_per_shard(1 << 14)
            .with_version_stripes(2)
            .with_max_load_permille(800)
            .with_migrate_steps_per_op(0),
    );
    for key in STABLE_KEYS {
        map.insert(key, encode(key, 0));
    }

    let threads = cfg.threads as u64;
    let key_space = STABLE_COUNT as u64 + threads * SHARD_SLOTS as u64;
    let zipf = (cfg.zipf_milli > 0).then(|| Zipf::new(key_space, cfg.zipf_milli as f64 / 1000.0));

    let violations = Violations::new();
    let v = &violations;
    let map_ref = &map;
    let zipf_ref = &zipf;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut shadow = ShardShadow::new();
        // Last published [epoch, cursor] seen per shard, for monotonicity.
        let mut last_meta = vec![[0u64; 2]; map_ref.shard_count()];
        for _ in 0..cfg.ops {
            match rng.gen_range(10) {
                0..=4 => {
                    // Read: Zipf-skewed over the shared key space when the
                    // knob is set, uniform otherwise.
                    let rank = match zipf_ref {
                        Some(z) => z.sample(&mut rng),
                        None => rng.gen_range(key_space),
                    };
                    let key = read_key(rank);
                    let mut val = 0u64;
                    let found = map_ref.get(key, &mut val);
                    if found && !integrity_ok(key, val) {
                        v.record(format!(
                            "shard: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                            val & 0xFFFF
                        ));
                    }
                    if STABLE_KEYS.contains(&key) {
                        if !found {
                            v.record(format!(
                                "shard: stable key {key:#x} reported absent (torn lookup)"
                            ));
                        } else if val != encode(key, 0) {
                            v.record(format!(
                                "shard: stable key {key:#x} value changed to {val:#x}"
                            ));
                        }
                    } else if key >= slot_key(id, 0) && key < slot_key(id, SHARD_SLOTS) {
                        // Our own key: single-writer ownership makes the
                        // shadow exact even mid-run.
                        let j = (key - slot_key(id, 0)) as usize;
                        let expect = shadow.live(j);
                        if found != expect.is_some() || (found && Some(val) != expect) {
                            v.record(format!(
                                "shard: own key {key:#x} read {:?}, shadow says {expect:?}",
                                found.then_some(val)
                            ));
                        }
                    }
                }
                5 | 6 => {
                    // (Re-)insert one of our slots, then read it straight
                    // back: a misrouted link is invisible to the lookup
                    // path and fails here.
                    let j = rng.gen_range(SHARD_SLOTS as u64) as usize;
                    let key = slot_key(id, j);
                    let expect_newly = !shadow.present[j];
                    let val = encode(key, shadow.generation[j] + 1);
                    shadow.insert(j, val);
                    let newly = map_ref.insert(key, val);
                    if newly != expect_newly {
                        v.record(format!(
                            "shard: insert({key:#x}) returned newly={newly} but shadow says newly={expect_newly}"
                        ));
                    }
                    let mut got = 0u64;
                    if !map_ref.get(key, &mut got) {
                        v.record(format!(
                            "shard: own key {key:#x} absent immediately after insert (lost key)"
                        ));
                    } else if got != val {
                        v.record(format!(
                            "shard: own key {key:#x} read {got:#x} immediately after inserting {val:#x}"
                        ));
                    }
                }
                7 => {
                    // Remove one of our slots.
                    let j = rng.gen_range(SHARD_SLOTS as u64) as usize;
                    let key = slot_key(id, j);
                    let was = map_ref.remove(key);
                    if was != shadow.remove(j) {
                        v.record(format!(
                            "shard: remove({key:#x}) returned {was} but shadow says present={}",
                            !was
                        ));
                    }
                }
                8 => {
                    // Drive one migration chain move on a random shard,
                    // then check the published cursor never regresses.
                    let si = rng.gen_range(map_ref.shard_count() as u64) as usize;
                    map_ref.migrate_step(si);
                    let [_, _, cursor, epoch] = map_ref.migration_state(si);
                    let [le, lc] = last_meta[si];
                    if epoch < le {
                        v.record(format!(
                            "shard: shard {si} epoch moved backwards ({le} -> {epoch})"
                        ));
                    } else if epoch == le && cursor < lc {
                        v.record(format!(
                            "shard: shard {si} cursor moved backwards ({lc} -> {cursor}) in epoch {epoch}"
                        ));
                    }
                    last_meta[si] = [epoch, cursor];
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(300))),
            }
        }
        shadow
    });

    // Quiescent oracles: owner shadows are the truth now.
    let mut expected_len = STABLE_COUNT as u64;
    let mut expected_per_shard = vec![0u64; map.shard_count()];
    for key in STABLE_KEYS {
        expected_per_shard[map.shard_of(key)] += 1;
        let mut val = 0u64;
        if !map.get(key, &mut val) {
            violations.record(format!("shard: stable key {key:#x} absent after the run"));
        } else if val != encode(key, 0) {
            violations.record(format!(
                "shard: stable key {key:#x} ended as {val:#x}, expected {:#x}",
                encode(key, 0)
            ));
        }
    }
    for (id, shadow) in report.results.iter().enumerate() {
        for j in 0..SHARD_SLOTS {
            let key = slot_key(id, j);
            let mut val = 0u64;
            let found = map.get(key, &mut val);
            if found != shadow.present[j] {
                violations.record(format!(
                    "shard: final state of {key:#x} is present={found}, owner shadow says {}",
                    shadow.present[j]
                ));
            } else if found {
                if val != shadow.value[j] {
                    violations.record(format!(
                        "shard: final value of {key:#x} is {val:#x}, owner shadow says {:#x} (lost update)",
                        shadow.value[j]
                    ));
                }
                expected_per_shard[map.shard_of(key)] += 1;
            }
        }
        expected_len += shadow.live_count();
    }

    // Per-shard parity: counter cell, locked enumeration, and the routed
    // owner shadows must all agree; migration invariants must hold even if
    // a migration is still live at quiescence.
    for (si, &routed) in expected_per_shard.iter().enumerate() {
        let enumerated = map.shard_len_slow(si) as u64;
        let counted = map.shard_live_count(si);
        if enumerated != counted {
            violations.record(format!(
                "shard: shard {si} enumerates {enumerated} keys but its counter says {counted}"
            ));
        }
        if enumerated != routed {
            violations.record(format!(
                "shard: shard {si} holds {enumerated} keys, owner shadows route {routed} there"
            ));
        }
        if !map.old_chains_empty_below_cursor(si) {
            violations.record(format!(
                "shard: shard {si} has a non-empty old-table chain below the migration cursor"
            ));
        }
    }
    let len = map.len_slow() as u64;
    if len != expected_len {
        violations.record(format!(
            "shard: len is {len}, owner shadows total {expected_len}"
        ));
    }
    if !map.versions_even() {
        violations.record("shard: a version word was left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    for shadow in &report.results {
        shadow.fold(&mut h);
    }
    h.write_u64(len);
    for &n in &expected_per_shard {
        h.write_u64(n);
    }
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: Some(super::granule_stat_parity(&ale)),
    }
}
