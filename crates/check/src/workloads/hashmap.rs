//! The paper's chained HashMap: SWOpt readers vs Lock-mode mutators.

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_hashmap::{AleHashMap, MapConfig};
use ale_vtime::{tick, Event};

use super::shadow::{KvShadow, ShadowModel};
use super::{
    churn_key, encode, integrity_ok, lane_rng, sim_for, Violations, WorkloadOutcome,
    CHURN_PER_LANE, STABLE_COUNT, STABLE_KEYS,
};
use crate::{CheckConfig, Fnv};

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    // SWOpt vs Lock focus: HTM off so every optimistic read takes the
    // SWOpt path and every mutation runs under the lock, maximising the
    // windows the seqlock protocol must cover. 4 buckets force long mixed
    // chains (stable and churn keys collide).
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform())
            .without_htm()
            .with_seed(cfg.seed),
        StaticPolicy::new(0, 6),
    );
    let map: AleHashMap<u64> = AleHashMap::new(&ale, MapConfig::new(4).with_capacity(1 << 14));
    for key in STABLE_KEYS {
        map.insert(key, encode(key, 0));
    }

    let violations = Violations::new();
    let v = &violations;
    let map_ref = &map;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut shadow = KvShadow::new();
        let threads = cfg.threads as u64;
        for _ in 0..cfg.ops {
            match rng.gen_range(10) {
                0..=4 => {
                    // Read a random key: a stable one or any lane's churn key.
                    let key = if rng.gen_ratio(1, 2) {
                        STABLE_KEYS.start + rng.gen_range(STABLE_KEYS.end - STABLE_KEYS.start)
                    } else {
                        churn_key(
                            rng.gen_range(threads) as usize,
                            rng.gen_range(CHURN_PER_LANE as u64) as usize,
                        )
                    };
                    let mut val = 0u64;
                    let found = map_ref.get(key, &mut val);
                    if found && !integrity_ok(key, val) {
                        v.record(format!(
                            "hashmap: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                            val & 0xFFFF
                        ));
                    }
                    if STABLE_KEYS.contains(&key) {
                        if !found {
                            v.record(format!("hashmap: stable key {key:#x} reported absent"));
                        } else if val != encode(key, 0) {
                            v.record(format!(
                                "hashmap: stable key {key:#x} value changed to {val:#x}"
                            ));
                        }
                    }
                }
                5 | 6 => {
                    // (Re-)insert one of our own keys; alternate the plain
                    // and fine-grained paths for coverage.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let expect_newly = !shadow.present[j];
                    let val = encode(key, shadow.generation[j] + 1);
                    shadow.insert(j, val);
                    let newly = if shadow.generation[j].is_multiple_of(2) {
                        map_ref.insert(key, val)
                    } else {
                        map_ref.insert_fine(key, val)
                    };
                    if newly != expect_newly {
                        v.record(format!(
                            "hashmap: insert({key:#x}) returned newly={newly} but shadow says newly={expect_newly}"
                        ));
                    }
                }
                7 => {
                    // Remove one of our own keys via a rotating API choice.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let was = match rng.gen_range(3) {
                        0 => map_ref.remove(key),
                        1 => map_ref.remove_fine(key),
                        _ => map_ref.remove_self_abort(key),
                    };
                    if was != shadow.remove(j) {
                        v.record(format!(
                            "hashmap: remove({key:#x}) returned {was} but shadow says present={}",
                            !was
                        ));
                    }
                }
                8 => {
                    // Rotate: remove one of our keys and immediately insert a
                    // *different* one. The freed slab node lands on this
                    // lane's free stripe and the very next alloc pops it, so
                    // the node is recycled under a new key within a few ticks
                    // of the unlink — the shortest possible reuse distance,
                    // and the schedule a skipped version bump or a skipped
                    // reader validation cannot survive.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let was = map_ref.remove(key);
                    if was != shadow.remove(j) {
                        v.record(format!(
                            "hashmap: remove({key:#x}) returned {was} but shadow says present={}",
                            !was
                        ));
                    }
                    let j2 = (j + 1) % CHURN_PER_LANE;
                    let key2 = churn_key(id, j2);
                    let expect_newly = !shadow.present[j2];
                    let val2 = encode(key2, shadow.generation[j2] + 1);
                    shadow.insert(j2, val2);
                    let newly = map_ref.insert(key2, val2);
                    if newly != expect_newly {
                        v.record(format!(
                            "hashmap: insert({key2:#x}) returned newly={newly} but shadow says newly={expect_newly}"
                        ));
                    }
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(300))),
            }
        }
        shadow
    });

    // Quiescent oracles: owner shadows are the truth now.
    let mut expected_len = STABLE_COUNT;
    for (id, shadow) in report.results.iter().enumerate() {
        for j in 0..CHURN_PER_LANE {
            let key = churn_key(id, j);
            let mut val = 0u64;
            let found = map.get(key, &mut val);
            if found != shadow.present[j] {
                violations.record(format!(
                    "hashmap: final state of {key:#x} is present={found}, owner shadow says {}",
                    shadow.present[j]
                ));
            } else if found && val != shadow.value[j] {
                violations.record(format!(
                    "hashmap: final value of {key:#x} is {val:#x}, owner shadow says {:#x} (lost update)",
                    shadow.value[j]
                ));
            }
            expected_len += shadow.present[j] as usize;
        }
    }
    for key in STABLE_KEYS {
        let mut val = 0u64;
        if !map.get(key, &mut val) {
            violations.record(format!("hashmap: stable key {key:#x} absent after the run"));
        }
    }
    let len = map.len_slow();
    if len != expected_len {
        violations.record(format!(
            "hashmap: len is {len}, owner shadows total {expected_len}"
        ));
    }
    if !map.versions_even() {
        violations.record("hashmap: a version word was left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    for shadow in &report.results {
        shadow.fold(&mut h);
    }
    h.write_u64(len as u64);
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: Some(super::granule_stat_parity(&ale)),
    }
}
