//! TTL cache with eviction: entries carry an expiry deadline, readers must
//! never be served a stale entry, and eviction is lazy (explicit drops
//! plus periodic sweeps).
//!
//! The cache wraps the ALE HashMap and packs each entry's deadline into
//! its value (`expiry << 16 | key`), so freshness revalidation is one
//! shift away from the lookup — and skipping it (`mut-ttl-stale-read`) is
//! a one-line bug, exactly the mutation the selftest must catch.
//!
//! Oracle soundness: churn slots are lane-owned (sole writer), and the
//! lane judges freshness against the *same* `now` it passed into the
//! cache, so the per-op shadow comparison ([`TtlShadow::live`]) is exact —
//! no tolerance window. Cross-lane reads check value integrity only.

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_hashmap::{AleHashMap, MapConfig};
use ale_vtime::{tick, Event};

use super::shadow::{ShadowModel, TtlShadow};
use super::{
    churn_key, integrity_ok, lane_rng, sim_for, Violations, WorkloadOutcome, CHURN_PER_LANE,
    STABLE_COUNT, STABLE_KEYS,
};
use crate::{CheckConfig, Fnv};

/// Deadline for entries that must never expire (fits the 48-bit field).
const FOREVER: u64 = 1 << 47;

/// Pack a deadline and the key's integrity bits into one cache value.
fn encode_ttl(key: u64, expiry: u64) -> u64 {
    (expiry << 16) | (key & 0xFFFF)
}

fn expiry_of(val: u64) -> u64 {
    val >> 16
}

/// The ALE HashMap as a TTL cache: values carry their deadline; `get`
/// revalidates it against the caller's clock.
struct TtlCache {
    map: AleHashMap<u64>,
}

impl TtlCache {
    fn fill(&self, key: u64, expiry: u64) -> bool {
        self.map.insert(key, encode_ttl(key, expiry))
    }

    fn evict(&self, key: u64) -> bool {
        self.map.remove(key)
    }

    /// Look `key` up at time `now`: a hit whose deadline has passed is
    /// *stale* and must read as a miss (revalidation on the read path).
    fn get(&self, key: u64, now: u64) -> Option<u64> {
        let mut val = 0u64;
        if !self.map.get(key, &mut val) {
            return None;
        }
        if cfg!(feature = "mut-ttl-stale-read") {
            // MUTATION: serve whatever is cached without revalidating the
            // deadline — the stale read the freshness oracle must catch.
            return Some(val);
        }
        if expiry_of(val) <= now {
            return None;
        }
        Some(val)
    }
}

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    // Tuned like the hashmap workload: HTM off, so lookups ride the SWOpt
    // path and every fill/evict runs under the lock — the widest stale
    // windows the revalidation has to close.
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform())
            .without_htm()
            .with_seed(cfg.seed),
        StaticPolicy::new(0, 6),
    );
    let cache = TtlCache {
        map: AleHashMap::new(&ale, MapConfig::new(4).with_capacity(1 << 14)),
    };
    for key in STABLE_KEYS {
        cache.fill(key, FOREVER);
    }

    let violations = Violations::new();
    let v = &violations;
    let cache_ref = &cache;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut shadow = TtlShadow::new();
        let threads = cfg.threads as u64;
        for _ in 0..cfg.ops {
            match rng.gen_range(10) {
                0..=2 => {
                    // Freshness-checked read of an owned slot: the shadow
                    // computes the expected outcome from the same `now`.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let now = ale_vtime::now();
                    let got = cache_ref.get(key, now);
                    let want = shadow.live(j, now);
                    if got != want {
                        v.record(match (got, want) {
                            (Some(val), None) if shadow.present[j] => format!(
                                "ttl: get({key:#x}) served a stale entry {val:#x} \
                                 (deadline {} ≤ now {now})",
                                shadow.expiry[j]
                            ),
                            (Some(val), None) => format!(
                                "ttl: get({key:#x}) returned {val:#x} for an evicted key"
                            ),
                            (None, Some(val)) => format!(
                                "ttl: get({key:#x}) missed a fresh entry {val:#x} \
                                 (deadline {} > now {now})",
                                shadow.expiry[j]
                            ),
                            (Some(got), Some(want)) => format!(
                                "ttl: get({key:#x}) returned {got:#x}, shadow says {want:#x}"
                            ),
                            (None, None) => unreachable!("equal"),
                        });
                    }
                }
                3 | 4 => {
                    // Cross-lane read: stable keys are immortal and exact;
                    // other lanes' churn keys get integrity checks only.
                    let now = ale_vtime::now();
                    if rng.gen_ratio(1, 2) {
                        let key =
                            STABLE_KEYS.start + rng.gen_range(STABLE_KEYS.end - STABLE_KEYS.start);
                        match cache_ref.get(key, now) {
                            Some(val) if val != encode_ttl(key, FOREVER) => v.record(format!(
                                "ttl: stable key {key:#x} value changed to {val:#x}"
                            )),
                            None => {
                                v.record(format!("ttl: stable key {key:#x} reported absent"))
                            }
                            _ => {}
                        }
                    } else {
                        let key = churn_key(
                            rng.gen_range(threads) as usize,
                            rng.gen_range(CHURN_PER_LANE as u64) as usize,
                        );
                        if let Some(val) = cache_ref.get(key, now) {
                            if !integrity_ok(key, val) {
                                v.record(format!(
                                    "ttl: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                                    val & 0xFFFF
                                ));
                            }
                        }
                    }
                }
                5 | 6 => {
                    // Fill an owned slot with a jittered lifetime.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let ttl = cfg.ttl_ns + rng.gen_range(cfg.ttl_ns.max(1));
                    let expiry = ale_vtime::now() + ttl;
                    let expect_newly = !shadow.present[j];
                    shadow.fill(j, encode_ttl(key, expiry), expiry);
                    let newly = cache_ref.fill(key, expiry);
                    if newly != expect_newly {
                        v.record(format!(
                            "ttl: fill({key:#x}) returned newly={newly} but shadow says newly={expect_newly}"
                        ));
                    }
                }
                7 => {
                    // Unconditional eviction of an owned slot.
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let was = cache_ref.evict(key);
                    if was != shadow.evict(j) {
                        v.record(format!(
                            "ttl: evict({key:#x}) returned {was} but shadow says present={}",
                            !was
                        ));
                    }
                }
                8 => {
                    // Sweep: evict every owned entry whose deadline passed.
                    let now = ale_vtime::now();
                    for j in 0..CHURN_PER_LANE {
                        if shadow.present[j] && shadow.expiry[j] <= now {
                            let key = churn_key(id, j);
                            if !cache_ref.evict(key) {
                                v.record(format!(
                                    "ttl: sweep found expired {key:#x} already gone"
                                ));
                            }
                        }
                    }
                    shadow.sweep(now);
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(300))),
            }
        }
        shadow
    });

    // Quiescent oracles: physical state must match the owner shadows
    // (expired-but-unswept entries are still physically present).
    let mut expected_len = STABLE_COUNT;
    for (id, shadow) in report.results.iter().enumerate() {
        for j in 0..CHURN_PER_LANE {
            let key = churn_key(id, j);
            let mut val = 0u64;
            let found = cache.map.get(key, &mut val);
            if found != shadow.present[j] {
                violations.record(format!(
                    "ttl: final state of {key:#x} is present={found}, owner shadow says {}",
                    shadow.present[j]
                ));
            } else if found && val != shadow.value[j] {
                violations.record(format!(
                    "ttl: final value of {key:#x} is {val:#x}, owner shadow says {:#x} (lost update)",
                    shadow.value[j]
                ));
            }
            expected_len += shadow.present[j] as usize;
        }
    }
    let len = cache.map.len_slow();
    if len != expected_len {
        violations.record(format!(
            "ttl: len is {len}, owner shadows total {expected_len}"
        ));
    }
    if !cache.map.versions_even() {
        violations.record("ttl: a version word was left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    for shadow in &report.results {
        shadow.fold(&mut h);
    }
    h.write_u64(len as u64);
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
