//! Sequential shadow models: the oracles the scenario workloads check
//! against.
//!
//! A shadow model is the *naive single-threaded truth* for a slice of
//! state. Workloads keep one per lane over lane-owned state (the single
//! writer makes the comparison sound under any interleaving — the real
//! subject must agree with the shadow op for op) and consult shared-state
//! models only at quiescent points. Every model also folds into the run
//! digest, so a divergence that somehow escapes its oracle still breaks
//! determinism comparisons.
//!
//! The models themselves are deliberately boring — arrays, a deque, a
//! vector of balances, no interior mutability, no time. `tests/
//! shadow_prop.rs` pins each one against an independently-written
//! reference under random op sequences, so a bug in a model can't silently
//! weaken the workload oracles that trust it.

use crate::Fnv;

use super::CHURN_PER_LANE;

/// A sequential shadow: applies operations, returns the observation the
/// real subject must match, folds into the run digest.
pub trait ShadowModel {
    /// One operation against the modelled state.
    type Op;
    /// What the real subject must have observed for the same operation.
    type Obs: PartialEq + std::fmt::Debug;

    fn apply(&mut self, op: &Self::Op) -> Self::Obs;
    fn fold(&self, h: &mut Fnv);
}

// ---------------------------------------------------------------------------
// Key/value shadow (hashmap, kyoto, registry fills)
// ---------------------------------------------------------------------------

/// Per-lane shadow of the churn keys this lane owns (sole writer).
#[derive(Clone)]
pub struct KvShadow {
    pub present: [bool; CHURN_PER_LANE],
    pub value: [u64; CHURN_PER_LANE],
    pub generation: [u64; CHURN_PER_LANE],
}

#[derive(Debug, Clone, Copy)]
pub enum KvOp {
    /// (Re-)insert `value` under the slot's key.
    Insert { slot: usize, value: u64 },
    /// Remove the slot's key.
    Remove { slot: usize },
}

impl KvShadow {
    pub fn new() -> Self {
        KvShadow {
            present: [false; CHURN_PER_LANE],
            value: [0; CHURN_PER_LANE],
            generation: [0; CHURN_PER_LANE],
        }
    }

    /// Insert, returning `true` when the key was newly inserted (the
    /// map's `insert` contract).
    pub fn insert(&mut self, slot: usize, value: u64) -> bool {
        let newly = !self.present[slot];
        self.present[slot] = true;
        self.value[slot] = value;
        self.generation[slot] += 1;
        newly
    }

    /// Remove, returning whether the key was present.
    pub fn remove(&mut self, slot: usize) -> bool {
        std::mem::replace(&mut self.present[slot], false)
    }
}

impl Default for KvShadow {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowModel for KvShadow {
    type Op = KvOp;
    /// `true` = the op changed presence (newly inserted / was present).
    type Obs = bool;

    fn apply(&mut self, op: &KvOp) -> bool {
        match *op {
            KvOp::Insert { slot, value } => self.insert(slot, value),
            KvOp::Remove { slot } => self.remove(slot),
        }
    }

    fn fold(&self, h: &mut Fnv) {
        for j in 0..CHURN_PER_LANE {
            h.write(&[self.present[j] as u8]);
            h.write_u64(self.value[j]);
            h.write_u64(self.generation[j]);
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded-map shadow
// ---------------------------------------------------------------------------

/// Lane-owned slots of the sharded-map workload. Wider than
/// [`CHURN_PER_LANE`] so one lane's keys land on *many* shards — the point
/// of the shard workload is linearizability across shard boundaries, so a
/// lane must routinely mutate several shards within one op window.
pub const SHARD_SLOTS: usize = 8;

/// Per-lane shadow for the sharded map: presence, value, and generation per
/// owned slot, plus an insert/remove ledger whose difference is the lane's
/// exact contribution to the map's live-key count — the per-shard
/// count-vs-enumeration parity oracle sums these at quiescence.
#[derive(Clone)]
pub struct ShardShadow {
    pub present: [bool; SHARD_SLOTS],
    pub value: [u64; SHARD_SLOTS],
    pub generation: [u64; SHARD_SLOTS],
    /// Successful new insertions (presence false → true).
    pub inserted: u64,
    /// Successful removals (presence true → false).
    pub removed: u64,
}

#[derive(Debug, Clone, Copy)]
pub enum ShardOp {
    /// (Re-)insert `value` under the slot's key.
    Insert { slot: usize, value: u64 },
    /// Remove the slot's key.
    Remove { slot: usize },
    /// Look the slot's key up.
    Get { slot: usize },
}

impl ShardShadow {
    pub fn new() -> Self {
        ShardShadow {
            present: [false; SHARD_SLOTS],
            value: [0; SHARD_SLOTS],
            generation: [0; SHARD_SLOTS],
            inserted: 0,
            removed: 0,
        }
    }

    /// Insert, returning `true` when the key was newly inserted.
    pub fn insert(&mut self, slot: usize, value: u64) -> bool {
        let newly = !self.present[slot];
        self.present[slot] = true;
        self.value[slot] = value;
        self.generation[slot] += 1;
        self.inserted += newly as u64;
        newly
    }

    /// Remove, returning whether the key was present.
    pub fn remove(&mut self, slot: usize) -> bool {
        let was = std::mem::replace(&mut self.present[slot], false);
        self.removed += was as u64;
        was
    }

    /// The value a lookup must return (`None` = absent).
    pub fn live(&self, slot: usize) -> Option<u64> {
        self.present[slot].then_some(self.value[slot])
    }

    /// This lane's net contribution to the map's live-key count.
    pub fn live_count(&self) -> u64 {
        self.inserted - self.removed
    }
}

impl Default for ShardShadow {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowModel for ShardShadow {
    type Op = ShardOp;
    /// `Get` → the live value; `Insert`/`Remove` → 1 when presence changed.
    type Obs = Option<u64>;

    fn apply(&mut self, op: &ShardOp) -> Option<u64> {
        match *op {
            ShardOp::Insert { slot, value } => Some(self.insert(slot, value) as u64),
            ShardOp::Remove { slot } => Some(self.remove(slot) as u64),
            ShardOp::Get { slot } => self.live(slot),
        }
    }

    fn fold(&self, h: &mut Fnv) {
        for j in 0..SHARD_SLOTS {
            h.write(&[self.present[j] as u8]);
            h.write_u64(self.value[j]);
            h.write_u64(self.generation[j]);
        }
        h.write_u64(self.inserted);
        h.write_u64(self.removed);
    }
}

// ---------------------------------------------------------------------------
// TTL cache shadow
// ---------------------------------------------------------------------------

/// Per-lane shadow of a TTL cache's lane-owned slots: presence, value and
/// the *exact* expiry deadline. Freshness is judged against a caller-
/// supplied `now`, never wall/virtual clock reads inside the model — the
/// workload passes the same `now` to the cache and the shadow, so the two
/// computations are identical and the stale-read oracle has no tolerance
/// window to hide in.
#[derive(Clone)]
pub struct TtlShadow {
    pub present: [bool; CHURN_PER_LANE],
    pub value: [u64; CHURN_PER_LANE],
    pub expiry: [u64; CHURN_PER_LANE],
}

#[derive(Debug, Clone, Copy)]
pub enum TtlOp {
    /// Cache `value` under the slot's key until `expiry`.
    Fill {
        slot: usize,
        value: u64,
        expiry: u64,
    },
    /// Drop the slot's key unconditionally.
    Evict { slot: usize },
    /// Drop every entry whose deadline is ≤ `now`.
    Sweep { now: u64 },
    /// Look the slot's key up at time `now`.
    Get { slot: usize, now: u64 },
}

impl TtlShadow {
    pub fn new() -> Self {
        TtlShadow {
            present: [false; CHURN_PER_LANE],
            value: [0; CHURN_PER_LANE],
            expiry: [0; CHURN_PER_LANE],
        }
    }

    /// Fill, returning `true` when the key was newly inserted.
    pub fn fill(&mut self, slot: usize, value: u64, expiry: u64) -> bool {
        let newly = !self.present[slot];
        self.present[slot] = true;
        self.value[slot] = value;
        self.expiry[slot] = expiry;
        newly
    }

    /// Evict, returning whether the key was present.
    pub fn evict(&mut self, slot: usize) -> bool {
        std::mem::replace(&mut self.present[slot], false)
    }

    /// Evict every expired entry, returning how many went.
    pub fn sweep(&mut self, now: u64) -> u64 {
        let mut evicted = 0;
        for j in 0..CHURN_PER_LANE {
            if self.present[j] && self.expiry[j] <= now {
                self.present[j] = false;
                evicted += 1;
            }
        }
        evicted
    }

    /// The value a fresh lookup at `now` must return (`None` = absent *or*
    /// expired; an expired entry may still be physically cached, but
    /// serving it is the stale-read bug).
    pub fn live(&self, slot: usize, now: u64) -> Option<u64> {
        (self.present[slot] && self.expiry[slot] > now).then_some(self.value[slot])
    }
}

impl Default for TtlShadow {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowModel for TtlShadow {
    type Op = TtlOp;
    /// `Get` → the live value; `Sweep` → entries evicted; `Fill`/`Evict` →
    /// 1 when presence changed, else 0.
    type Obs = Option<u64>;

    fn apply(&mut self, op: &TtlOp) -> Option<u64> {
        match *op {
            TtlOp::Fill {
                slot,
                value,
                expiry,
            } => Some(self.fill(slot, value, expiry) as u64),
            TtlOp::Evict { slot } => Some(self.evict(slot) as u64),
            TtlOp::Sweep { now } => Some(self.sweep(now)),
            TtlOp::Get { slot, now } => self.live(slot, now),
        }
    }

    fn fold(&self, h: &mut Fnv) {
        for j in 0..CHURN_PER_LANE {
            h.write(&[self.present[j] as u8]);
            h.write_u64(self.value[j]);
            h.write_u64(self.expiry[j]);
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded FIFO shadow
// ---------------------------------------------------------------------------

/// A bounded FIFO queue: the sequential truth for the producer-consumer
/// ring. Used directly in the quiescent drain check and property-tested
/// against a naive reference; during the concurrent phase the workload
/// uses per-(consumer, producer) subsequence oracles instead, which stay
/// sound without a centralized model.
#[derive(Clone)]
pub struct QueueShadow {
    items: std::collections::VecDeque<u64>,
    cap: usize,
}

#[derive(Debug, Clone, Copy)]
pub enum QueueOp {
    Enqueue(u64),
    Dequeue,
    Len,
}

impl QueueShadow {
    pub fn new(cap: usize) -> Self {
        QueueShadow {
            items: std::collections::VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Enqueue, returning `false` when the queue is full.
    pub fn enqueue(&mut self, item: u64) -> bool {
        if self.items.len() >= self.cap {
            return false;
        }
        self.items.push_back(item);
        true
    }

    pub fn dequeue(&mut self) -> Option<u64> {
        self.items.pop_front()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl ShadowModel for QueueShadow {
    type Op = QueueOp;
    /// `Enqueue` → 1 accepted / 0 full; `Dequeue` → the item; `Len` → len.
    type Obs = Option<u64>;

    fn apply(&mut self, op: &QueueOp) -> Option<u64> {
        match *op {
            QueueOp::Enqueue(item) => Some(self.enqueue(item) as u64),
            QueueOp::Dequeue => self.dequeue(),
            QueueOp::Len => Some(self.len() as u64),
        }
    }

    fn fold(&self, h: &mut Fnv) {
        h.write_u64(self.items.len() as u64);
        for &it in &self.items {
            h.write_u64(it);
        }
    }
}

// ---------------------------------------------------------------------------
// Balance shadow
// ---------------------------------------------------------------------------

/// Account balances under invariant-preserving multi-key transfers: two
/// debtors each pay `amount`, one creditor receives both, so the total is
/// conserved op by op. The workload checks conservation concurrently (it
/// needs no model); the shadow is the sequential truth the property tests
/// pin, and the quiescent digest surface.
#[derive(Clone)]
pub struct BalanceShadow {
    balances: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
pub struct TransferOp {
    /// First debtor.
    pub a: usize,
    /// Second debtor.
    pub b: usize,
    /// Creditor (receives `2 * amount`).
    pub c: usize,
    pub amount: u64,
}

impl BalanceShadow {
    pub fn new(accounts: usize, initial: u64) -> Self {
        BalanceShadow {
            balances: vec![initial; accounts],
        }
    }

    /// Apply a transfer, returning `false` (state unchanged) when either
    /// debtor lacks funds or the accounts are not distinct.
    pub fn transfer(&mut self, op: TransferOp) -> bool {
        let TransferOp { a, b, c, amount } = op;
        if a == b || b == c || a == c {
            return false;
        }
        if self.balances[a] < amount || self.balances[b] < amount {
            return false;
        }
        self.balances[a] -= amount;
        self.balances[b] -= amount;
        self.balances[c] += 2 * amount;
        true
    }

    pub fn total(&self) -> u64 {
        self.balances.iter().sum()
    }

    pub fn balance(&self, i: usize) -> u64 {
        self.balances[i]
    }
}

impl ShadowModel for BalanceShadow {
    type Op = TransferOp;
    /// Whether the transfer applied.
    type Obs = bool;

    fn apply(&mut self, op: &TransferOp) -> bool {
        self.transfer(*op)
    }

    fn fold(&self, h: &mut Fnv) {
        for &b in &self.balances {
            h.write_u64(b);
        }
    }
}
