//! The durable Kyoto CacheDB: write-ahead logging, crash-point fault
//! injection, and verified recovery.
//!
//! Same shape as the `kyoto` workload (per-lane churn keys, shared stable
//! keys, occasional whole-database counts), but through [`DurableCacheDb`]
//! with one crucial bookkeeping change: a lane's shadow is updated only
//! **after** an operation returns — the shadow is the *acknowledged* state,
//! exactly what a client of a durable store is promised to find again.
//!
//! When the configured crash plan fires ([`CheckConfig::crash`]), the lane
//! whose operation was killed records it as *in-flight* and every lane
//! stops at its next operation boundary (the process is dead; the WAL
//! medium freezes). The harness then plays the restart: a **fresh**
//! [`ale_core::Ale`] instance recovers a new database from the log, and the
//! durability oracle checks:
//!
//! * every acknowledged operation is present after recovery (a churn key's
//!   recovered state must be its owner's acked shadow state — or the
//!   owner's in-flight operation, which may or may not have become durable
//!   before the crash; nothing else);
//! * no unacknowledged operation is observable — enforced per key by the
//!   same allowed-set check, and globally by comparing `count()` against an
//!   enumeration of every key the workload can legally contain (a torn
//!   record wrongly applied materialises a garbage key and inflates the
//!   count);
//! * record seqs are gapless up to the truncation point;
//! * init-phase records (armed before the crash plan) always survive.
//!
//! Crash-free runs instead require recovery to reproduce the live database
//! exactly — which is what catches `mut-wal-ack-before-durable` even
//! without a crash: the acked-but-unflushed tail record is missing from the
//! recovered image.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_htm::InjectedCrash;
use ale_kyoto::{wal, DbConfig, DurableCacheDb, KyotoDb, Wal};
use ale_vtime::{tick, Event};

use super::shadow::{KvShadow, ShadowModel};
use super::{
    churn_key, encode, integrity_ok, lane_rng, sim_for, Violations, WorkloadOutcome,
    CHURN_PER_LANE, STABLE_COUNT, STABLE_KEYS,
};
use crate::{CheckConfig, Fnv};

/// What a killed lane was doing: `Some(value)` = set, `None` = remove.
type Inflight = Option<(usize, Option<u64>)>;

struct LaneOut {
    shadow: KvShadow,
    inflight: Inflight,
}

fn db_config() -> DbConfig {
    DbConfig {
        buckets_per_slot: 64,
        capacity_per_slot: 1 << 12,
        payload_cells: 2,
    }
}

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    // The init phase below must not consume the crash plan's consult
    // budget; disarm, init, then arm fresh.
    ale_htm::inject::clear_crash();

    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform()).with_seed(cfg.seed),
        StaticPolicy::new(3, 10),
    );
    let shared_wal = std::sync::Arc::new(Wal::new());
    let db = DurableCacheDb::new(&ale, db_config(), std::sync::Arc::clone(&shared_wal));
    for key in STABLE_KEYS {
        db.set(key, encode(key, 0));
    }
    if let Some(crash) = cfg.crash {
        ale_htm::inject::install_crash(crash.to_plan(cfg.torn));
    }

    let violations = Violations::new();
    let v = &violations;
    let db_ref = &db;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut shadow = KvShadow::new();
        let mut inflight: Inflight = None;
        let threads = cfg.threads as u64;
        for op in 0..cfg.ops {
            // The process died: the lane stops at its op boundary.
            if ale_htm::inject::crashed() {
                break;
            }
            if op % 64 == 63 {
                let n = db_ref.count();
                let ceiling = STABLE_COUNT + cfg.threads * CHURN_PER_LANE;
                if n > ceiling {
                    v.record(format!("durable: count() returned {n} > ceiling {ceiling}"));
                }
                continue;
            }
            match rng.gen_range(10) {
                0..=4 => {
                    let key = if rng.gen_ratio(1, 2) {
                        STABLE_KEYS.start + rng.gen_range(STABLE_KEYS.end - STABLE_KEYS.start)
                    } else {
                        churn_key(
                            rng.gen_range(threads) as usize,
                            rng.gen_range(CHURN_PER_LANE as u64) as usize,
                        )
                    };
                    match db_ref.get(key) {
                        Some(val) if !integrity_ok(key, val) => v.record(format!(
                            "durable: get({key:#x}) returned value {val:#x} belonging to key {:#x}",
                            val & 0xFFFF
                        )),
                        Some(val) if STABLE_KEYS.contains(&key) && val != encode(key, 0) => v
                            .record(format!(
                                "durable: stable key {key:#x} value changed to {val:#x}"
                            )),
                        None if STABLE_KEYS.contains(&key) => {
                            v.record(format!("durable: stable key {key:#x} reported absent"))
                        }
                        _ => {}
                    }
                }
                5 | 6 => {
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    let val = encode(key, shadow.generation[j] + 1);
                    match catch_unwind(AssertUnwindSafe(|| db_ref.set(key, val))) {
                        Ok(_newly) => {
                            // The acknowledgement: only now does the client
                            // consider the write durable.
                            shadow.insert(j, val);
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<InjectedCrash>().is_none() {
                                resume_unwind(payload);
                            }
                            inflight = Some((j, Some(val)));
                            break;
                        }
                    }
                }
                7 | 8 => {
                    let j = rng.gen_range(CHURN_PER_LANE as u64) as usize;
                    let key = churn_key(id, j);
                    match catch_unwind(AssertUnwindSafe(|| db_ref.remove(key))) {
                        Ok(_was) => {
                            shadow.remove(j);
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<InjectedCrash>().is_none() {
                                resume_unwind(payload);
                            }
                            inflight = Some((j, None));
                            break;
                        }
                    }
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(300))),
            }
        }
        LaneOut { shadow, inflight }
    });

    let crashed = ale_htm::inject::crashed();

    if !db.versions_even() {
        violations.record("durable: a live-db slot version was left odd after quiescence".into());
    }

    // The restart: recover a fresh database — new Ale instance, same log.
    let ale2 = Ale::new(
        AleConfig::new(cfg.platform.platform()).with_seed(cfg.seed ^ 0xD15C),
        StaticPolicy::new(3, 10),
    );
    let (rdb, rec) = wal::recover(&ale2, db_config(), std::sync::Arc::clone(&shared_wal));

    if !rec.gapless {
        violations.record(format!(
            "durable: recovered log has a seq gap (last trusted seq {})",
            rec.last_seq
        ));
    }
    if !crashed && rec.truncated != 0 {
        violations.record(format!(
            "durable: {} record(s) truncated from a log that never crashed",
            rec.truncated
        ));
    }
    if !rdb.versions_even() {
        violations.record("durable: a recovered-db slot version is odd".into());
    }

    // Init-phase records were durable before the crash plan was armed.
    for key in STABLE_KEYS {
        if rdb.get(key) != Some(encode(key, 0)) {
            violations.record(format!(
                "durable: stable key {key:#x} not intact after recovery"
            ));
        }
        if !crashed && db.get(key) != Some(encode(key, 0)) {
            violations.record(format!("durable: stable key {key:#x} lost on the live db"));
        }
    }

    for (id, lane) in report.results.iter().enumerate() {
        for j in 0..CHURN_PER_LANE {
            let key = churn_key(id, j);
            let acked = lane.shadow.present[j].then_some(lane.shadow.value[j]);
            let found = rdb.get(key);
            // The allowed post-recovery states: the acked state, plus the
            // owner's in-flight operation (its record may have become
            // durable before the crash killed the commit).
            let inflight_state = match lane.inflight {
                Some((ij, state)) if ij == j => Some(state),
                _ => None,
            };
            if found != acked && Some(found) != inflight_state {
                violations.record(format!(
                    "durable: recovered {key:#x} is {found:?}, but acked state is {acked:?}{}",
                    match inflight_state {
                        Some(s) => format!(" and the in-flight op would leave {s:?}"),
                        None => String::new(),
                    }
                ));
            }
            if !crashed && db.get(key) != acked {
                violations.record(format!(
                    "durable: live {key:#x} is {:?}, owner shadow says {acked:?}",
                    db.get(key)
                ));
            }
        }
    }

    // Global no-garbage check: the database may contain exactly the keys
    // the workload can name. A torn record wrongly applied (the
    // `mut-recovery-skip-checksum` failure mode) materialises a key
    // outside this enumeration, which only the count can see.
    let mut enumerated = 0usize;
    for key in STABLE_KEYS {
        enumerated += rdb.get(key).is_some() as usize;
    }
    for id in 0..cfg.threads {
        for j in 0..CHURN_PER_LANE {
            enumerated += rdb.get(churn_key(id, j)).is_some() as usize;
        }
    }
    let n = rdb.count();
    if n != enumerated {
        violations.record(format!(
            "durable: recovered count() is {n} but only {enumerated} known key(s) are present \
             (phantom record applied?)"
        ));
    }
    if !crashed {
        let live = db.count();
        if live != n {
            violations.record(format!(
                "durable: live count {live} != recovered count {n} with no crash \
                 (acked record missing from the log?)"
            ));
        }
    }

    let mut h = Fnv::new();
    for lane in &report.results {
        lane.shadow.fold(&mut h);
        match lane.inflight {
            None => h.write(&[0]),
            Some((j, None)) => {
                h.write(&[1, j as u8]);
            }
            Some((j, Some(val))) => {
                h.write(&[2, j as u8]);
                h.write_u64(val);
            }
        }
    }
    h.write_u64(n as u64);
    h.write_u64(rec.applied);
    h.write_u64(rec.ignored);
    h.write_u64(rec.truncated);
    h.write_u64(rec.last_seq);
    h.write_u64(shared_wal.appends());
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
