//! Multi-key transfers: every mutation moves value across *three*
//! accounts (two debtors fund a creditor at 2×), so any torn or partial
//! application breaks conservation by a detectable amount.
//!
//! The invariant oracle is total balance: SWOpt audits sum every account
//! under a validated version snapshot mid-run, and the quiescent check
//! re-sums directly. [`BalanceShadow`] is the sequential model the
//! property tests pin the transfer rule against (distinct accounts,
//! sufficient funds, exact conservation).

use ale_core::{scope, Ale, AleConfig, CsOptions, CsOutcome, StaticPolicy};
use ale_htm::HtmCell;
use ale_sync::{SeqVersion, SpinLock};
use ale_vtime::{tick, Event};

use super::{lane_rng, sim_for, Violations, WorkloadOutcome};
use crate::{CheckConfig, Fnv};

/// More accounts than the bank workload so three distinct picks rarely
/// collide, but few enough that lanes still contend.
const XFER_ACCOUNTS: usize = 16;
const XFER_INITIAL: u64 = 1000;
const TOTAL: u64 = XFER_ACCOUNTS as u64 * XFER_INITIAL;

#[derive(Clone, Copy, Default)]
struct LaneOut {
    applied: u64,
    audits: u64,
}

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform()).with_seed(cfg.seed),
        StaticPolicy::new(4, 4),
    );
    let lock = ale.new_lock("transferLock", SpinLock::new());
    let ver = SeqVersion::new();
    let accounts: Vec<HtmCell<u64>> = (0..XFER_ACCOUNTS)
        .map(|_| HtmCell::new(XFER_INITIAL))
        .collect();

    let violations = Violations::new();
    let v = &violations;
    let (lock_ref, ver_ref, acct_ref) = (&lock, &ver, &accounts);
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut out = LaneOut::default();
        for _ in 0..cfg.ops {
            match rng.gen_range(10) {
                0..=5 => {
                    // Three-account move: debit a and b, credit c with the
                    // combined amount. Skipped (not an error) when the picks
                    // collide or a debtor is short.
                    let a = rng.gen_range(XFER_ACCOUNTS as u64) as usize;
                    let b = rng.gen_range(XFER_ACCOUNTS as u64) as usize;
                    let c = rng.gen_range(XFER_ACCOUNTS as u64) as usize;
                    let amount = 1 + rng.gen_range(4);
                    if a == b || b == c || a == c {
                        continue;
                    }
                    let applied =
                        lock_ref.cs_plain(scope!("transfer::move3"), CsOptions::new(), |_| {
                            ver_ref.begin_conflicting_action();
                            let fa = acct_ref[a].get();
                            let fb = acct_ref[b].get();
                            let done = if fa >= amount && fb >= amount {
                                acct_ref[a].set(fa - amount);
                                // A stall between the debits and the credit
                                // widens the torn-state window audits must
                                // never observe.
                                tick(Event::LocalWork(300));
                                acct_ref[b].set(fb - amount);
                                acct_ref[c].set(acct_ref[c].get() + 2 * amount);
                                true
                            } else {
                                false
                            };
                            ver_ref.end_conflicting_action();
                            done
                        });
                    out.applied += applied as u64;
                }
                6..=8 => {
                    // Conservation audit: a validated snapshot of all
                    // accounts must sum to TOTAL, no matter how many
                    // transfers raced it.
                    let sum = lock_ref.cs(
                        scope!("transfer::audit"),
                        CsOptions::new().with_swopt().non_conflicting(),
                        |cs| -> CsOutcome<u64> {
                            if cs.is_swopt() {
                                let s = ver_ref.read(false);
                                if s % 2 == 1 {
                                    return CsOutcome::SwOptFail;
                                }
                                let sum: u64 = acct_ref.iter().map(|c| c.get()).sum();
                                if !ver_ref.validate(s) {
                                    return CsOutcome::SwOptFail;
                                }
                                CsOutcome::Done(sum)
                            } else {
                                CsOutcome::Done(acct_ref.iter().map(|c| c.get()).sum())
                            }
                        },
                    );
                    if sum != TOTAL {
                        v.record(format!(
                            "transfer: audit observed total {sum}, expected {TOTAL} \
                             (partial three-way move leaked)"
                        ));
                    }
                    out.audits += 1;
                }
                _ => tick(Event::LocalWork(1 + rng.gen_range(250))),
            }
        }
        out
    });

    let final_sum: u64 = accounts.iter().map(|c| c.get()).sum();
    if final_sum != TOTAL {
        violations.record(format!(
            "transfer: final total {final_sum} != {TOTAL} (conservation broken)"
        ));
    }
    if ver.read(false) % 2 == 1 {
        violations.record("transfer: version word left odd after quiescence".into());
    }

    let mut h = Fnv::new();
    for cell in &accounts {
        h.write_u64(cell.get());
    }
    for out in &report.results {
        h.write_u64(out.applied);
        h.write_u64(out.audits);
    }
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
