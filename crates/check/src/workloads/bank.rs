//! Transfer/audit bank on raw `HtmCell`s: the TLE lock-subscription
//! soundness test (HTM auditors vs Lock-mode writers).

use ale_core::{scope, Ale, AleConfig, CsOptions, StaticPolicy};
use ale_htm::HtmCell;
use ale_sync::SpinLock;
use ale_vtime::{tick, Event};

use super::{lane_rng, sim_for, Violations, WorkloadOutcome, ACCOUNTS, INITIAL_BALANCE};
use crate::{CheckConfig, Fnv};

pub(super) fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    let total = ACCOUNTS as u64 * INITIAL_BALANCE;
    let accounts: Vec<HtmCell<u64>> = (0..ACCOUNTS)
        .map(|_| HtmCell::new(INITIAL_BALANCE))
        .collect();
    let ale = Ale::new(
        AleConfig::new(cfg.platform.platform())
            .without_swopt()
            .with_seed(cfg.seed),
        StaticPolicy::new(4, 0),
    );
    let lock = ale.new_lock("bankLock", SpinLock::new());

    let violations = Violations::new();
    let v = &violations;
    let accounts_ref = &accounts;
    let lock_ref = &lock;
    let report = sim_for(cfg).run(|lane| {
        let id = lane.id();
        let mut rng = lane_rng(cfg, id);
        let mut audits = 0u64;
        for _ in 0..cfg.ops {
            if id % 2 == 0 {
                // Writer: Lock-mode transfer with a wide window between the
                // debit and the credit. An HTM auditor that fails to
                // subscribe to the lock can commit a sum from inside this
                // window.
                let a = rng.gen_range(ACCOUNTS as u64) as usize;
                let b = (a + 1 + rng.gen_range(ACCOUNTS as u64 - 1) as usize) % ACCOUNTS;
                let amount = 1 + rng.gen_range(5);
                lock_ref.cs_plain(
                    scope!("bank::transfer"),
                    CsOptions::new().without_htm(),
                    |_| {
                        let from = accounts_ref[a].get();
                        if from >= amount {
                            accounts_ref[a].set(from - amount);
                            tick(Event::LocalWork(500));
                            let to = accounts_ref[b].get();
                            accounts_ref[b].set(to + amount);
                        }
                    },
                );
            } else {
                // Auditor: sums every account, preferably in HTM mode.
                let sum = lock_ref.cs_plain(scope!("bank::audit"), CsOptions::new(), |_| {
                    accounts_ref.iter().map(|c| c.get()).sum::<u64>()
                });
                audits += 1;
                if sum != total {
                    v.record(format!(
                        "bank: audit observed sum {sum}, expected {total} (torn read of a Lock-mode transfer)"
                    ));
                }
                tick(Event::LocalWork(1 + rng.gen_range(200)));
            }
        }
        audits
    });

    let final_sum: u64 = accounts.iter().map(|c| c.get()).sum();
    if final_sum != total {
        violations.record(format!(
            "bank: final sum {final_sum} != {total} (lost update)"
        ));
    }

    let mut h = Fnv::new();
    for audits in &report.results {
        h.write_u64(*audits);
    }
    h.write_u64(final_sum);
    WorkloadOutcome {
        violations: violations.into_vec(),
        digest: h.finish(),
        decisions: report.decisions,
        makespan_ns: report.makespan_ns,
        stat_parity: None,
    }
}
