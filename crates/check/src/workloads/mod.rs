//! Model-checked workloads and their oracles.
//!
//! Each workload runs a fixed operation mix under the simulator and checks
//! invariants both *during* the run (from inside lanes, recorded — never
//! asserted — so one violation doesn't hide the rest) and *after* it
//! (quiescent-state oracles). The keyspace is partitioned so every mutable
//! key has exactly one writer lane: per-key final state is then fully
//! determined by that lane's operation sequence, which gives a sound
//! linearizability check (owner shadows) without a centralized model.
//!
//! Values embed their key in the low 16 bits, so a reader that lands on a
//! recycled node — the failure mode of a skipped version bump or a skipped
//! validation — returns a value whose embedded key disagrees with the one
//! requested, and the integrity oracle fires.
//!
//! Two tiers of workloads share this module:
//!
//! * **Microbenchmark subjects** ([`Workload::HashMap`], [`Workload::Kyoto`],
//!   [`Workload::Bank`], [`Workload::Snzi`], [`Workload::Panic`]) — one
//!   mechanism each, from the paper's experiments.
//! * **The scenario pack** ([`Workload::SCENARIOS`]) — real-world shapes
//!   (TTL cache, bounded queue, multi-key transfers, read-mostly registry,
//!   nested compound ops), each paired with a sequential shadow model from
//!   [`shadow`] where single-writer ownership makes the comparison sound,
//!   and with invariant oracles (conservation, capacity, epoch coherence)
//!   where state is shared.

pub mod shadow;

mod bank;
mod durable;
mod hashmap;
mod kyoto;
mod nested;
mod panic;
mod queue;
mod registry;
mod shard;
mod snzi;
mod transfer;
mod ttl;

use std::sync::Mutex;

use ale_vtime::{Rng, Sim};

use crate::{CheckConfig, Fnv};

/// Which subject the schedule exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The paper's chained HashMap: SWOpt readers vs Lock-mode mutators.
    HashMap,
    /// The Kyoto CacheDB: nested RW-lock + slot-lock critical sections,
    /// all three modes.
    Kyoto,
    /// Transfer/audit bank on raw `HtmCell`s: the TLE lock-subscription
    /// soundness test (HTM auditors vs Lock-mode writers).
    Bank,
    /// SNZI arrive/depart storm: the indicator must never read empty while
    /// a surplus exists.
    Snzi,
    /// Panicking critical sections in all three modes: after every caught
    /// unwind the runtime must have closed the panicker's conflicting
    /// regions (seqlock parity restored), left no transaction open, and —
    /// for Lock mode — poisoned the lock until explicit recovery.
    Panic,
    /// TTL cache with eviction: entries expire, readers must never be
    /// served a stale entry, sweeps evict lazily.
    Ttl,
    /// Bounded producer-consumer ring: FIFO per producer, capacity bound
    /// observed by SWOpt length probes, exact end-to-end item accounting.
    Queue,
    /// Multi-key transfers (two debtors, one creditor) with SWOpt
    /// conservation audits over all accounts.
    Transfer,
    /// Read-mostly registry with rare bulk updates publishing an epoch
    /// block through a [`ale_sync::SeqBuffer`]: epoch coherence and torn-
    /// publication oracles.
    Registry,
    /// Nested compound operations — a transfer *inside* a cache fill —
    /// exercising conflicting-region nesting and the grouping SNZI.
    Nested,
    /// The durable Kyoto CacheDB behind its write-ahead log, with
    /// crash-point fault injection: after a simulated crash the database
    /// is recovered from the log and checked against the acked-operation
    /// shadows — every acknowledged operation present, no unacknowledged
    /// operation observable, seqs gapless up to the truncation point.
    Durable,
    /// The sharded map with live incremental resize: SWOpt readers (Zipf-
    /// skewed via `--zipf`) race Lock-mode mutators and explicit migration
    /// steps across `--shards` shards; oracles cover torn lookups during
    /// chain splices, lost keys from misrouted inserts, migration-cursor
    /// monotonicity, and per-shard count-vs-enumeration parity.
    Shard,
}

impl Workload {
    pub const ALL: [Workload; 12] = [
        Workload::HashMap,
        Workload::Kyoto,
        Workload::Bank,
        Workload::Snzi,
        Workload::Panic,
        Workload::Ttl,
        Workload::Queue,
        Workload::Transfer,
        Workload::Registry,
        Workload::Nested,
        Workload::Durable,
        Workload::Shard,
    ];

    /// The real-world scenario pack (the `--workload scenarios` group).
    pub const SCENARIOS: [Workload; 5] = [
        Workload::Ttl,
        Workload::Queue,
        Workload::Transfer,
        Workload::Registry,
        Workload::Nested,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Workload::HashMap => "hashmap",
            Workload::Kyoto => "kyoto",
            Workload::Bank => "bank",
            Workload::Snzi => "snzi",
            Workload::Panic => "panic",
            Workload::Ttl => "ttl",
            Workload::Queue => "queue",
            Workload::Transfer => "transfer",
            Workload::Registry => "registry",
            Workload::Nested => "nested",
            Workload::Durable => "durable",
            Workload::Shard => "shard",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Workload::ALL.into_iter().find(|w| w.name() == s)
    }
}

/// What a workload reports back to [`crate::run_once`].
#[derive(Debug)]
pub struct WorkloadOutcome {
    pub violations: Vec<String>,
    /// Workload-specific digest material (lane results, final state).
    pub digest: u64,
    pub decisions: u64,
    pub makespan_ns: u64,
    /// Granule statistics parity sample: `(total executions recorded
    /// across every granule, all counters still exact)`. `None` when the
    /// workload does not sample its runtime's granule stats. Compared by
    /// `run_once` against the observed completion count — never folded
    /// into the digest.
    pub stat_parity: Option<(u64, bool)>,
}

/// Recorded oracle violations. Capped so a hot oracle can't balloon the
/// report; the count is always exact.
pub(crate) struct Violations {
    inner: Mutex<(Vec<String>, u64)>,
}

const MAX_RECORDED: usize = 48;

impl Violations {
    pub(crate) fn new() -> Self {
        Violations {
            inner: Mutex::new((Vec::new(), 0)),
        }
    }

    pub(crate) fn record(&self, msg: String) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.1 += 1;
        if g.0.len() < MAX_RECORDED {
            g.0.push(msg);
        }
    }

    pub(crate) fn into_vec(self) -> Vec<String> {
        let (mut v, total) = self.inner.into_inner().unwrap_or_else(|p| p.into_inner());
        if total > v.len() as u64 {
            v.push(format!("… and {} more violations", total - v.len() as u64));
        }
        v
    }
}

pub(crate) fn sim_for(cfg: &CheckConfig) -> Sim {
    Sim::new(cfg.platform.platform(), cfg.threads)
        .with_seed(cfg.seed)
        .with_sched_seed(cfg.sched_seed)
        .with_strategy(cfg.strategy.to_strategy(cfg.window_ns, cfg.permille))
        .with_perturb_limit(cfg.perturb_limit)
}

/// Per-lane operation rng. An FNV sub-seed of the workload's *name* is
/// folded in, so each workload draws its op distribution from its own
/// stream: `--seed N` gives unrelated sequences across workloads, and
/// adding a workload can never shift an existing workload's stream (the
/// seed-stability contract pinned by `tests/digest_regressions.rs`).
pub(crate) fn lane_rng(cfg: &CheckConfig, lane: usize) -> Rng {
    let mut sub = Fnv::new();
    sub.write(cfg.workload.name().as_bytes());
    Rng::new(cfg.seed ^ sub.finish() ^ (lane as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Sum the completed-execution statistic across every granule of `ale`'s
/// locks, plus whether all those counters are still in the BFP exact
/// regime (the comparison is only meaningful while they are). Called
/// after the simulation has drained, from the host thread — not a
/// simulated lane — so the counter reads tick nothing and pinned
/// schedule digests are unaffected.
pub(crate) fn granule_stat_parity(ale: &ale_core::Ale) -> (u64, bool) {
    let mut executions = 0u64;
    let mut exact = true;
    for meta in ale.lock_metas() {
        for g in meta.granules.all() {
            executions += g.stats.executions.read();
            exact &= g.stats.executions.is_exact();
        }
    }
    (executions, exact)
}

/// Dispatch to the configured workload.
pub fn run(cfg: &CheckConfig) -> WorkloadOutcome {
    match cfg.workload {
        Workload::HashMap => hashmap::run(cfg),
        Workload::Kyoto => kyoto::run(cfg),
        Workload::Bank => bank::run(cfg),
        Workload::Snzi => snzi::run(cfg),
        Workload::Panic => panic::run(cfg),
        Workload::Ttl => ttl::run(cfg),
        Workload::Queue => queue::run(cfg),
        Workload::Transfer => transfer::run(cfg),
        Workload::Registry => registry::run(cfg),
        Workload::Nested => nested::run(cfg),
        Workload::Durable => durable::run(cfg),
        Workload::Shard => shard::run(cfg),
    }
}

// ---------------------------------------------------------------------------
// Shared key/value scheme
// ---------------------------------------------------------------------------

/// Value encoding shared by the map workloads: generation in the high
/// bits, the key's low 16 bits embedded for the integrity oracle.
pub(crate) fn encode(key: u64, generation: u64) -> u64 {
    (generation << 16) | (key & 0xFFFF)
}

pub(crate) fn integrity_ok(key: u64, val: u64) -> bool {
    val & 0xFFFF == key & 0xFFFF
}

pub(crate) const STABLE_KEYS: std::ops::Range<u64> = 1..9;
pub(crate) const STABLE_COUNT: usize = (STABLE_KEYS.end - STABLE_KEYS.start) as usize;
pub(crate) const CHURN_PER_LANE: usize = 4;

pub(crate) fn churn_key(lane: usize, j: usize) -> u64 {
    0x100 + (lane as u64) * CHURN_PER_LANE as u64 + j as u64
}

pub(crate) const ACCOUNTS: usize = 12;
pub(crate) const INITIAL_BALANCE: u64 = 1_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.name()), Some(w));
        }
        assert_eq!(Workload::parse("nonsense"), None);
    }

    #[test]
    fn scenarios_are_a_subset_of_all() {
        for s in Workload::SCENARIOS {
            assert!(Workload::ALL.contains(&s));
        }
    }

    #[test]
    fn lane_rngs_differ_across_workloads_and_lanes() {
        let mk = |w: Workload, lane: usize| {
            let cfg = CheckConfig {
                workload: w,
                ..CheckConfig::default()
            };
            let mut r = lane_rng(&cfg, lane);
            (0..8).map(|_| r.gen_range(1000)).collect::<Vec<u64>>()
        };
        assert_ne!(mk(Workload::Ttl, 0), mk(Workload::Queue, 0));
        assert_ne!(mk(Workload::Ttl, 0), mk(Workload::Ttl, 1));
        assert_eq!(mk(Workload::Ttl, 0), mk(Workload::Ttl, 0));
    }
}
