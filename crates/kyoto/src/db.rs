//! Common database structure: slot-partitioned chained hash storage.
//!
//! Kyoto Cabinet's `CacheDB` shards its records over a fixed set of slots
//! (each with its own lock and hash array) beneath one database-wide
//! readers-writer lock — the locking structure the paper's Figure 5
//! experiments elide. This module provides the slot storage shared by the
//! ALE-integrated database ([`crate::AleCacheDb`]) and the `trylockspin`
//! baseline ([`crate::TrylockspinDb`]), plus the [`KyotoDb`] trait the
//! `wicked` workload drives.
//!
//! Like Kyoto's CacheDB, a successful lookup *mutates*: the record moves to
//! the front of its bucket chain (LRU-ish bookkeeping). That detail is
//! what makes the paper's `nomutate` statistics interesting — only misses
//! can complete purely optimistically.

use ale_htm::HtmCell;
use ale_sync::SeqVersion;

use ale_hashmap::node::{NodeSlab, NIL};

pub use ale_hashmap::node::Node;

/// Number of slots (Kyoto Cabinet's `SLOTNUM`).
pub const SLOT_NUM: usize = 16;

/// The record type: fixed-size u64 values (Kyoto stores byte strings; a
/// fixed-size payload exercises the same locking paths).
pub type Value = u64;

/// One slot: a chained hash array plus its version number for optimistic
/// readers.
pub struct Slot {
    pub buckets: Vec<HtmCell<u64>>,
    pub slab: NodeSlab<Value>,
    pub ver: SeqVersion,
    /// Per-record payload words (row-major: `node_id * payload_cells ..`),
    /// modelling Kyoto's byte-string record bodies: every cell is written
    /// on set and read on get, inflating transaction footprints the way
    /// real record copies do.
    payload: Vec<HtmCell<u64>>,
    payload_cells: usize,
    mask: usize,
}

impl Slot {
    pub fn new(buckets: usize, capacity: u64) -> Self {
        Self::with_payload(buckets, capacity, 0)
    }

    /// As [`Slot::new`] with `payload_cells` extra words per record.
    pub fn with_payload(buckets: usize, capacity: u64, payload_cells: usize) -> Self {
        let buckets = buckets.next_power_of_two();
        Slot {
            buckets: (0..buckets).map(|_| HtmCell::new(NIL)).collect(),
            slab: NodeSlab::with_capacity(capacity),
            ver: SeqVersion::new(),
            payload: (0..capacity as usize * payload_cells)
                .map(|_| HtmCell::new(0))
                .collect(),
            payload_cells,
            mask: buckets - 1,
        }
    }

    /// Write a record's payload body (call under the same protection as
    /// the value write). Derives the words from `value` so readers can
    /// verify them.
    pub fn write_payload(&self, id: u64, value: Value) {
        let base = (id as usize - 1) * self.payload_cells;
        for (i, cell) in self.payload[base..base + self.payload_cells]
            .iter()
            .enumerate()
        {
            cell.set(value.wrapping_add(i as u64));
        }
    }

    /// Read (and checksum) a record's payload body.
    pub fn read_payload(&self, id: u64) -> u64 {
        let base = (id as usize - 1) * self.payload_cells;
        let mut acc = 0u64;
        for cell in &self.payload[base..base + self.payload_cells] {
            acc = acc.wrapping_add(cell.get());
        }
        acc
    }

    pub fn payload_cells(&self) -> usize {
        self.payload_cells
    }

    #[inline]
    pub fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0xD134_2543_DE82_EF95) >> 32) as usize & self.mask
    }

    /// Search a bucket chain. Returns `(prev, id)`; `id == NIL` on miss.
    /// Caller must hold the slot lock, be inside a transaction, or follow
    /// an optimistic protocol validated against [`Slot::ver`].
    pub fn search(&self, key: u64) -> (u64, u64) {
        let idx = self.bucket_of(key);
        let mut prev = NIL;
        let mut bp = self.buckets[idx].get();
        while bp != NIL {
            let node = self.slab.node(bp);
            if node.key.get() == key {
                return (prev, bp);
            }
            prev = bp;
            bp = node.next.get();
        }
        (prev, NIL)
    }

    /// Move a found node to the front of its bucket (Kyoto's access-order
    /// bookkeeping). A conflicting action: callers bracket it with the
    /// slot version unless soundly elided.
    pub fn move_to_front(&self, key: u64, prev: u64, id: u64) {
        if prev == NIL {
            return; // already at the head
        }
        let idx = self.bucket_of(key);
        let next = self.slab.node(id).next.get();
        self.slab.node(prev).next.set(next);
        self.slab.node(id).next.set(self.buckets[idx].get());
        self.buckets[idx].set(id);
    }

    /// Unlink a found node. A conflicting action (see `move_to_front`).
    pub fn unlink(&self, key: u64, prev: u64, id: u64) {
        let idx = self.bucket_of(key);
        let next = self.slab.node(id).next.get();
        if prev == NIL {
            self.buckets[idx].set(next);
        } else {
            self.slab.node(prev).next.set(next);
        }
    }

    /// Link a pre-allocated node at the bucket head (not conflicting:
    /// publishes a fully-initialised node atomically).
    pub fn link_front(&self, key: u64, id: u64) {
        let idx = self.bucket_of(key);
        self.slab.node(id).next.set(self.buckets[idx].get());
        self.buckets[idx].set(id);
    }

    /// Number of records (caller must exclude writers).
    pub fn count(&self) -> usize {
        let mut n = 0;
        for b in &self.buckets {
            let mut bp = b.get();
            while bp != NIL {
                n += 1;
                bp = self.slab.node(bp).next.get();
            }
        }
        n
    }

    /// Remove every record, returning the unlinked ids (caller frees them
    /// after its critical section commits).
    pub fn clear_collect(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for b in &self.buckets {
            let mut bp = b.get();
            while bp != NIL {
                ids.push(bp);
                bp = self.slab.node(bp).next.get();
            }
            b.set(NIL);
        }
        ids
    }
}

/// Which slot a key lives in.
#[inline]
pub fn slot_of(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as usize & (SLOT_NUM - 1)
}

/// The operations the `wicked` workload drives, implemented by both the
/// ALE database and the `trylockspin` baseline.
pub trait KyotoDb: Sync {
    /// Insert or overwrite. Returns true if the key was new.
    fn set(&self, key: u64, value: Value) -> bool;
    /// Fetch (and touch — a hit moves the record to its bucket front).
    fn get(&self, key: u64) -> Option<Value>;
    /// Delete. Returns whether the key existed.
    fn remove(&self, key: u64) -> bool;
    /// Total records (takes the database exclusively).
    fn count(&self) -> usize;
    /// Remove everything (takes the database exclusively).
    fn clear(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_search_link_unlink() {
        let s = Slot::new(8, 1000);
        assert_eq!(s.search(1), (NIL, NIL));
        let id = s.slab.alloc(1, 10);
        s.link_front(1, id);
        let (prev, found) = s.search(1);
        assert_eq!((prev, found), (NIL, id));
        assert_eq!(s.count(), 1);
        s.unlink(1, prev, found);
        assert_eq!(s.search(1), (NIL, NIL));
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn move_to_front_reorders_chain() {
        let s = Slot::new(1, 1000); // single bucket: everything collides
        let ids: Vec<u64> = (0..4)
            .map(|k| {
                let id = s.slab.alloc(k, k * 10);
                s.link_front(k, id);
                id
            })
            .collect();
        // Chain is 3,2,1,0. Find key 0 (tail) and move it to front.
        let (prev, id) = s.search(0);
        assert_eq!(id, ids[0]);
        assert_ne!(prev, NIL);
        s.move_to_front(0, prev, id);
        let (p2, i2) = s.search(0);
        assert_eq!((p2, i2), (NIL, ids[0]), "must now be the head");
        assert_eq!(s.count(), 4, "reordering must not lose records");
        // Head move is a no-op.
        s.move_to_front(0, NIL, i2);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn clear_collect_empties_and_returns_ids() {
        let s = Slot::new(4, 1000);
        for k in 0..20 {
            let id = s.slab.alloc(k, k);
            s.link_front(k, id);
        }
        let ids = s.clear_collect();
        assert_eq!(ids.len(), 20);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn slot_of_is_stable_and_in_range() {
        for k in 0..10_000u64 {
            let s = slot_of(k);
            assert!(s < SLOT_NUM);
            assert_eq!(s, slot_of(k));
        }
        // Keys spread over all slots.
        let mut seen = [false; SLOT_NUM];
        for k in 0..10_000u64 {
            seen[slot_of(k)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
