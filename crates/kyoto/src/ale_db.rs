//! The ALE-integrated CacheDB: the paper's Figure 5 subject.
//!
//! Locking structure (nested, per §3.3/§4.1): every operation opens an
//! **external** critical section on the database's readers-writer lock
//! (shared for set/get/remove, exclusive for count/clear), and a **nested**
//! critical section on the key's slot lock for the actual record work.
//! Following the paper's best configuration, the external critical section
//! enables **both HTM and SWOpt**, while the internal one enables **only
//! HTM** ("we enable both HTM and SWOpt for the external critical section,
//! and only HTM for the internal critical section").
//!
//! The external SWOpt path performs the slot search optimistically
//! (validated against the slot's version). A **miss** completes without
//! touching any lock — the paper's `nomutate` statistic ("42 % of the
//! executions did not find the object they were seeking, and hence
//! succeeded using SWOpt"). A **hit** must mutate (Kyoto's move-to-front),
//! which the nested critical section performs after re-validating; if
//! validation fails the whole operation retries as a SWOpt failure.

use std::sync::Arc;

use ale_core::{scope, Ale, AleLock, AleRwLock, CsCtx, CsOptions, CsOutcome, ExecMode, LockMeta};
use ale_hashmap::node::NIL;
use ale_sync::{RwLock, SpinLock};

use crate::db::{slot_of, KyotoDb, Slot, Value, SLOT_NUM};

/// Configuration for [`AleCacheDb`].
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buckets per slot.
    pub buckets_per_slot: usize,
    /// Record capacity per slot.
    pub capacity_per_slot: u64,
    /// Payload words per record (models Kyoto's byte-string bodies: all of
    /// them are written by `set` and read by `get`, so transactions carry
    /// realistic footprints). 0 = value-only records.
    pub payload_cells: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buckets_per_slot: 1 << 12,
            capacity_per_slot: 1 << 16,
            payload_cells: 0,
        }
    }
}

struct DbSlot {
    lock: AleLock<SpinLock>,
    store: Slot,
}

/// Kyoto-Cabinet-style in-memory hash database, ALE-integrated.
pub struct AleCacheDb {
    mlock: AleRwLock<RwLock>,
    slots: Vec<DbSlot>,
    /// The external lock's metadata (for the bump-elision check inside
    /// nested slot critical sections — SWOpt readers register there).
    outer_meta: Arc<LockMeta>,
    /// Ablation A1: never elide the version bump.
    force_bump: bool,
}

/// Slot-lock labels (one static per slot so granule reports stay readable).
static SLOT_LABELS: [&str; SLOT_NUM] = [
    "slot00", "slot01", "slot02", "slot03", "slot04", "slot05", "slot06", "slot07", "slot08",
    "slot09", "slot10", "slot11", "slot12", "slot13", "slot14", "slot15",
];

impl AleCacheDb {
    pub fn new(ale: &Arc<Ale>, config: DbConfig) -> Self {
        let mlock = ale.new_rw_lock("mlock", RwLock::new());
        let outer_meta = Arc::clone(mlock.meta());
        let force_bump = ale.config().force_version_bump;
        AleCacheDb {
            mlock,
            slots: (0..SLOT_NUM)
                .map(|i| DbSlot {
                    lock: ale.new_lock(SLOT_LABELS[i], SpinLock::new()),
                    store: Slot::with_payload(
                        config.buckets_per_slot,
                        config.capacity_per_slot,
                        config.payload_cells,
                    ),
                })
                .collect(),
            outer_meta,
            force_bump,
        }
    }

    /// Should a conflicting action bump the slot version? Sound elision is
    /// possible only in HTM mode, and the relevant SWOpt readers are the
    /// *external* lock's (they traverse slot data optimistically), so the
    /// check consults the external lock's indicator — transactionally when
    /// in HTM mode, hence soundly.
    // ale-lint: htm-body — runs inside the inner critical section in HTM
    // mode (the grouping probe); must stay alloc/IO/park-free.
    fn bump_needed(&self, inner_cs: &CsCtx<'_>) -> bool {
        if self.force_bump {
            return true;
        }
        match inner_cs.mode() {
            ExecMode::Htm => self.outer_meta.grouping.could_swopt_be_running(),
            _ => true,
        }
    }

    /// Optimistic slot search for the external SWOpt path. Returns
    /// `Err(())` on interference, `Ok(hit)` otherwise.
    // ale-lint: swopt
    fn optimistic_search(&self, slot: &Slot, key: u64) -> Result<bool, ()> {
        let v = slot.ver.read(true);
        let idx = slot.bucket_of(key);
        let mut bp = slot.buckets[idx].get();
        if !slot.ver.validate(v) {
            return Err(());
        }
        while bp != NIL {
            let node = slot.slab.node(bp);
            let k = node.key.get();
            if !slot.ver.validate(v) {
                return Err(());
            }
            if k == key {
                return Ok(true);
            }
            bp = node.next.get();
            if !slot.ver.validate(v) {
                return Err(());
            }
        }
        Ok(false)
    }

    /// The external readers-writer lock's metadata (poison inspection and
    /// fault-injection targeting in tests).
    pub fn external_meta(&self) -> &Arc<LockMeta> {
        &self.outer_meta
    }

    /// A slot lock's metadata (poison inspection and fault-injection
    /// targeting in tests). Panics if `slot >= SLOT_NUM`.
    pub fn slot_meta(&self, slot: usize) -> &Arc<LockMeta> {
        self.slots[slot].lock.meta()
    }

    /// Clear the poison flag on every lock in the database — the first step
    /// of [`crate::wal::DurableCacheDb::heal`]'s rebuild-from-log recovery.
    /// On its own this re-exposes whatever half-finished state the
    /// poisoning panic left behind; callers must rebuild before trusting
    /// the contents.
    pub fn clear_all_poison(&self) {
        self.mlock.clear_poison();
        for ds in &self.slots {
            ds.lock.clear_poison();
        }
    }

    /// Are all slot versions even (no conflicting region left open)?
    /// ale-check's post-run oracle: an odd version after quiescence would
    /// wedge every future optimistic reader.
    pub fn versions_even(&self) -> bool {
        self.slots
            .iter()
            .all(|ds| ds.store.ver.read(false).is_multiple_of(2))
    }
}

impl KyotoDb for AleCacheDb {
    fn set(&self, key: u64, value: Value) -> bool {
        let ds = &self.slots[slot_of(key)];
        // Pre-allocate outside all critical sections.
        let new_id = ds.store.slab.alloc(key, value);
        let inserted = self.mlock.shared_cs(
            scope!("CacheDb::set"),
            CsOptions::new().non_conflicting(),
            |_outer| {
                // Nested slot critical section does the record work.
                let r = ds
                    .lock
                    .cs_plain(scope!("CacheDb::set::slot"), CsOptions::new(), |ics| {
                        let (prev, id) = ds.store.search(key);
                        if id != NIL {
                            let bump = self.bump_needed(ics);
                            if bump {
                                ds.store.ver.begin_conflicting_action();
                            }
                            ds.store.slab.node(id).val.set(value);
                            if ds.store.payload_cells() > 0 {
                                ds.store.write_payload(id, value);
                            }
                            ds.store.move_to_front(key, prev, id);
                            if bump {
                                ds.store.ver.end_conflicting_action();
                            }
                            false
                        } else {
                            if ds.store.payload_cells() > 0 {
                                ds.store.write_payload(new_id, value);
                            }
                            ds.store.link_front(key, new_id);
                            true
                        }
                    });
                CsOutcome::Done(r)
            },
        );
        if !inserted {
            ds.store.slab.free(new_id);
        }
        inserted
    }

    fn get(&self, key: u64) -> Option<Value> {
        let ds = &self.slots[slot_of(key)];
        self.mlock.shared_cs(
            scope!("CacheDb::get"),
            CsOptions::new().with_swopt().non_conflicting(),
            |outer| {
                if outer.is_swopt() {
                    // Optimistic search: a miss completes without locks.
                    match self.optimistic_search(&ds.store, key) {
                        Err(()) => return CsOutcome::SwOptFail,
                        Ok(false) => return CsOutcome::Done(None),
                        Ok(true) => {}
                    }
                    // Hit: the touch (move-to-front) needs the nested CS.
                    let got =
                        ds.lock
                            .cs_plain(scope!("CacheDb::get::slot"), CsOptions::new(), |ics| {
                                let (prev, id) = ds.store.search(key);
                                if id == NIL {
                                    // Gone since the optimistic search.
                                    return None;
                                }
                                let val = ds.store.slab.node(id).val.get();
                                if ds.store.payload_cells() > 0 {
                                    std::hint::black_box(ds.store.read_payload(id));
                                }
                                let bump = self.bump_needed(ics);
                                if bump {
                                    ds.store.ver.begin_conflicting_action();
                                }
                                ds.store.move_to_front(key, prev, id);
                                if bump {
                                    ds.store.ver.end_conflicting_action();
                                }
                                Some(val)
                            });
                    return CsOutcome::Done(got);
                }
                // HTM or Lock external mode: nested slot CS directly.
                let got = ds
                    .lock
                    .cs_plain(scope!("CacheDb::get::slot"), CsOptions::new(), |ics| {
                        let (prev, id) = ds.store.search(key);
                        if id == NIL {
                            return None;
                        }
                        let val = ds.store.slab.node(id).val.get();
                        if ds.store.payload_cells() > 0 {
                            std::hint::black_box(ds.store.read_payload(id));
                        }
                        let bump = self.bump_needed(ics);
                        if bump {
                            ds.store.ver.begin_conflicting_action();
                        }
                        ds.store.move_to_front(key, prev, id);
                        if bump {
                            ds.store.ver.end_conflicting_action();
                        }
                        Some(val)
                    });
                CsOutcome::Done(got)
            },
        )
    }

    fn remove(&self, key: u64) -> bool {
        let ds = &self.slots[slot_of(key)];
        let removed = self.mlock.shared_cs(
            scope!("CacheDb::remove"),
            CsOptions::new().with_swopt().non_conflicting(),
            |outer| {
                if outer.is_swopt() {
                    // A miss needs no mutation at all.
                    match self.optimistic_search(&ds.store, key) {
                        Err(()) => return CsOutcome::SwOptFail,
                        Ok(false) => return CsOutcome::Done(None),
                        Ok(true) => {}
                    }
                }
                let r =
                    ds.lock
                        .cs_plain(scope!("CacheDb::remove::slot"), CsOptions::new(), |ics| {
                            let (prev, id) = ds.store.search(key);
                            if id == NIL {
                                return None;
                            }
                            let bump = self.bump_needed(ics);
                            if bump {
                                ds.store.ver.begin_conflicting_action();
                            }
                            ds.store.unlink(key, prev, id);
                            if bump {
                                ds.store.ver.end_conflicting_action();
                            }
                            Some(id)
                        });
                CsOutcome::Done(r)
            },
        );
        match removed {
            Some(id) => {
                ds.store.slab.free(id);
                true
            }
            None => false,
        }
    }

    fn count(&self) -> usize {
        // Exclusive external CS (HTM allowed — this is the paper's
        // "relatively large hardware transaction"); each slot is read under
        // its nested critical section, because SWOpt-path hits mutate slots
        // below the external lock.
        self.mlock
            .excl_cs(scope!("CacheDb::count"), CsOptions::new(), |_| {
                let mut n = 0;
                for ds in &self.slots {
                    n += ds
                        .lock
                        .cs_plain(scope!("CacheDb::count::slot"), CsOptions::new(), |_| {
                            ds.store.count()
                        });
                }
                CsOutcome::Done(n)
            })
    }

    fn clear(&self) {
        // Too big for HTM by design; each slot is cleared under its nested
        // critical section with the version bumped (a conflicting action
        // for every optimistic reader).
        let freed: Vec<Vec<u64>> = self.mlock.excl_cs(
            scope!("CacheDb::clear"),
            CsOptions::new().without_htm(),
            |_| {
                let mut all = Vec::with_capacity(SLOT_NUM);
                for ds in &self.slots {
                    let ids = ds.lock.cs_plain(
                        scope!("CacheDb::clear::slot"),
                        CsOptions::new().without_htm(),
                        |_| {
                            ds.store.ver.begin_conflicting_action();
                            let ids = ds.store.clear_collect();
                            ds.store.ver.end_conflicting_action();
                            ids
                        },
                    );
                    all.push(ids);
                }
                CsOutcome::Done(all)
            },
        );
        for (ds, ids) in self.slots.iter().zip(freed) {
            for id in ids {
                ds.store.slab.free(id);
            }
        }
    }
}
