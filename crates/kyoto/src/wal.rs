//! Write-ahead log and verified recovery for the CacheDB.
//!
//! The paper's subject is Kyoto Cabinet — a *database* — so acknowledged
//! writes must survive a process death. This module adds the durability
//! layer: a [`Wal`] of fixed-layout checksummed records appended **outside**
//! the elided critical sections, a [`DurableCacheDb`] wrapper enforcing the
//! log → commit → acknowledge protocol, and [`recover`]/[`scan`] that
//! rebuild a fresh database from the log, truncating torn or corrupt tail
//! records and reporting what happened in a [`RecoveryReport`].
//!
//! # Record layout (48 bytes, little-endian)
//!
//! ```text
//! bytes  0..8   FNV-1a checksum over bytes 8..40
//! bytes  8..16  seq     (1-based, gapless)
//! bytes 16..24  op word (low byte: 1 set, 2 remove, 3 clear, 4 abort)
//! bytes 24..32  key     (abort: the cancelled record's seq)
//! bytes 32..40  value
//! bytes 40..48  commit marker = COMMIT_MAGIC ^ seq
//! ```
//!
//! The checksum guards the header against bit rot; the commit marker —
//! derived from the record's own seq — distinguishes a fully-written record
//! from a torn tail (a partial write cannot produce a marker matching the
//! seq it also failed to write). Recovery trusts a record only when frame
//! length, op code, marker and checksum all agree, and stops at the first
//! frame that doesn't: everything after a corruption is unreachable by
//! construction (the writer is strictly sequential), so truncation is the
//! only sound completion.
//!
//! # Ack-after-durable protocol
//!
//! Every mutating operation on [`DurableCacheDb`]:
//!
//! 1. appends its record to the WAL (durable from this point),
//! 2. commits the in-memory operation through the elided critical sections,
//! 3. returns — the acknowledgement.
//!
//! A critical section that unwinds with a non-crash panic between 1 and 3
//! appends a *compensation* record ([`WalOp::Abort`]) cancelling the
//! in-flight record, so recovery never applies an operation whose commit
//! failed in a live (non-crashed) process. A [`LockPoison`] unwind instead
//! heals in place: poison flags are cleared and the database is rebuilt
//! from the log (see [`DurableCacheDb::heal`]), so one panicking writer
//! cannot wedge every subsequent reader.
//!
//! Durability is simulated — the "medium" is process memory that survives
//! the harness's simulated crash, not a file, and the fsync cost is
//! modelled as a fixed virtual-time charge (`WAL_FSYNC_NS`) rather than
//! real I/O. DESIGN.md §12 records these non-goals.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

use ale_core::{Ale, LockPoison};
use ale_htm::inject::{self, CrashPoint, TornMode};
use ale_vtime::{tick, Event};

use crate::ale_db::{AleCacheDb, DbConfig};
use crate::db::{KyotoDb, Value};

/// Fixed frame size of one WAL record.
pub const RECORD_BYTES: usize = 48;

/// Virtual-time cost of making one record durable (the modelled fsync).
pub const WAL_FSYNC_NS: u64 = 150;

const COMMIT_MAGIC: u64 = 0xC0DE_D15C_ACED_FACE;

/// The operation a WAL record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or overwrite `key` with `value`.
    Set = 1,
    /// Delete `key`.
    Remove = 2,
    /// Drop every record.
    Clear = 3,
    /// Compensation: cancel the record whose seq is in the key field (its
    /// in-memory commit panicked, so it must not be replayed).
    Abort = 4,
}

impl WalOp {
    pub fn code(self) -> u8 {
        self as u8
    }

    pub fn from_code(code: u8) -> Option<WalOp> {
        Some(match code {
            1 => WalOp::Set,
            2 => WalOp::Remove,
            3 => WalOp::Clear,
            4 => WalOp::Abort,
            _ => return None,
        })
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub op: WalOp,
    pub key: u64,
    pub value: u64,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The FNV checksum over the header does not match.
    BadChecksum,
    /// The commit marker does not match the frame's seq (torn write).
    BadMarker,
    /// The op byte is not a known [`WalOp`].
    BadOp,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl WalRecord {
    /// Canonical frame encoding (see the module docs for the layout).
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[8..16].copy_from_slice(&self.seq.to_le_bytes());
        out[16..24].copy_from_slice(&(self.op.code() as u64).to_le_bytes());
        out[24..32].copy_from_slice(&self.key.to_le_bytes());
        out[32..40].copy_from_slice(&self.value.to_le_bytes());
        out[40..48].copy_from_slice(&(COMMIT_MAGIC ^ self.seq).to_le_bytes());
        let sum = fnv1a(&out[8..40]);
        out[0..8].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode and fully validate one frame.
    pub fn decode(frame: &[u8; RECORD_BYTES]) -> Result<WalRecord, FrameError> {
        let rec = Self::decode_fields(frame)?;
        let sum = u64::from_le_bytes(frame[0..8].try_into().unwrap());
        if sum != fnv1a(&frame[8..40]) {
            return Err(FrameError::BadChecksum);
        }
        Ok(rec)
    }

    /// Decode the fields, validating marker and op but *not* the checksum.
    /// This is what the `mut-recovery-skip-checksum` mutation (wrongly)
    /// trusts for a corrupt tail record.
    fn decode_fields(frame: &[u8; RECORD_BYTES]) -> Result<WalRecord, FrameError> {
        let seq = u64::from_le_bytes(frame[8..16].try_into().unwrap());
        let op_word = u64::from_le_bytes(frame[16..24].try_into().unwrap());
        let marker = u64::from_le_bytes(frame[40..48].try_into().unwrap());
        if marker != COMMIT_MAGIC ^ seq {
            return Err(FrameError::BadMarker);
        }
        if op_word > u8::MAX as u64 {
            return Err(FrameError::BadOp);
        }
        let op = WalOp::from_code(op_word as u8).ok_or(FrameError::BadOp)?;
        Ok(WalRecord {
            seq,
            op,
            key: u64::from_le_bytes(frame[24..32].try_into().unwrap()),
            value: u64::from_le_bytes(frame[32..40].try_into().unwrap()),
        })
    }
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

struct WalInner {
    /// The simulated durable medium.
    log: Vec<u8>,
    next_seq: u64,
    appends: u64,
    /// `mut-wal-ack-before-durable`: the volatile "OS buffer" a record sits
    /// in while its caller is already acknowledged — flushed only by the
    /// *next* append, so a crash in between loses an acked operation.
    #[cfg(feature = "mut-wal-ack-before-durable")]
    pending: Vec<u8>,
}

/// The write-ahead log: an append-only sequence of checksummed
/// [`WalRecord`] frames over a simulated durable medium.
///
/// Appends are serialised by an internal mutex (never held across a
/// virtual-time yield, so lanes cannot deadlock on it) and consult the
/// crash plan: [`CrashPoint::WalAppend`] before anything is written and
/// [`CrashPoint::MidRecord`] between the frame's first and last byte —
/// the latter leaves a torn tail record behind, per the planned
/// [`TornMode`]. Once a crash has fired the medium is frozen: any further
/// append raises [`ale_htm::InjectedCrash`], so post-mortem work can never
/// extend a dead process's log.
#[derive(Default)]
pub struct Wal {
    inner: Mutex<WalInner>,
}

impl Default for WalInner {
    fn default() -> Self {
        WalInner {
            log: Vec::new(),
            next_seq: 1,
            appends: 0,
            #[cfg(feature = "mut-wal-ack-before-durable")]
            pending: Vec::new(),
        }
    }
}

fn wal_label() -> u16 {
    static LABEL: OnceLock<u16> = OnceLock::new();
    *LABEL.get_or_init(|| ale_trace::label_id("wal"))
}

/// Torn-write damage: `Truncate` keeps a 20-byte prefix (mid-header), `Flip`
/// lands all 48 bytes but corrupts one key byte and one value byte. Both
/// are deterministic, so crash schedules replay bit-identically.
fn torn_bytes(frame: &[u8; RECORD_BYTES], mode: TornMode) -> Vec<u8> {
    match mode {
        TornMode::Truncate => frame[..20].to_vec(),
        TornMode::Flip => {
            let mut out = frame.to_vec();
            out[30] ^= 0x40; // key bits 48..56: a garbage keyspace
            out[36] ^= 0x5A; // value bits 32..40
            out
        }
    }
}

impl Wal {
    pub fn new() -> Wal {
        Wal::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Append one record, returning its seq. Durable on return (modulo the
    /// `mut-wal-ack-before-durable` mutation). May raise
    /// [`ale_htm::InjectedCrash`] per the installed crash plan, or when the
    /// process already crashed (the medium is frozen).
    pub fn append(&self, op: WalOp, key: u64, value: u64) -> u64 {
        if inject::crashed() {
            inject::crash_now();
        }
        inject::crash_at(CrashPoint::WalAppend);
        let seq;
        {
            let mut g = self.lock();
            seq = g.next_seq;
            let frame = WalRecord {
                seq,
                op,
                key,
                value,
            }
            .encode();
            if let Some(mode) = inject::crash_at_mid_record() {
                let torn = torn_bytes(&frame, mode);
                g.log.extend_from_slice(&torn);
                g.next_seq += 1;
                drop(g);
                inject::crash_now();
            }
            #[cfg(feature = "mut-wal-ack-before-durable")]
            {
                let flushed = std::mem::replace(&mut g.pending, frame.to_vec());
                g.log.extend_from_slice(&flushed);
            }
            #[cfg(not(feature = "mut-wal-ack-before-durable"))]
            g.log.extend_from_slice(&frame);
            g.next_seq += 1;
            g.appends += 1;
        }
        // The modelled fsync: charged outside the mutex so no lane ever
        // yields while holding it.
        tick(Event::LocalWork(WAL_FSYNC_NS));
        ale_trace::emit(ale_trace::TraceEvent::wal_fsync(
            wal_label(),
            op.code(),
            seq,
        ));
        seq
    }

    /// Append a compensation record cancelling `target_seq`.
    pub fn append_abort(&self, target_seq: u64) -> u64 {
        self.append(WalOp::Abort, target_seq, 0)
    }

    /// Snapshot of the durable bytes (what recovery reads).
    pub fn bytes(&self) -> Vec<u8> {
        self.lock().log.clone()
    }

    /// Durable bytes written so far.
    pub fn len(&self) -> usize {
        self.lock().log.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records appended (acknowledged fsyncs) so far.
    pub fn appends(&self) -> u64 {
        self.lock().appends
    }

    /// Rewind the medium to a scan's valid prefix so a recovered database
    /// can keep appending with gapless seqs.
    fn reset_to(&self, valid_len: usize, next_seq: u64) {
        let mut g = self.lock();
        g.log.truncate(valid_len);
        g.next_seq = next_seq;
        #[cfg(feature = "mut-wal-ack-before-durable")]
        g.pending.clear();
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What recovery found in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// State-changing records replayed into the fresh database.
    pub applied: u64,
    /// Records read but deliberately not applied: compensation markers and
    /// the records they cancel.
    pub ignored: u64,
    /// Torn/corrupt tail records dropped (a partial frame counts as one).
    pub truncated: u64,
    /// Seq of the last trusted record (0 = empty log).
    pub last_seq: u64,
    /// Seqs ran 1, 2, 3, … up to the truncation point. A gap means the
    /// medium lost an interior record — always a violation, since the
    /// writer is strictly sequential.
    pub gapless: bool,
}

/// A [`scan`] result: the operations to replay, in order, plus the report
/// and the valid prefix geometry.
#[derive(Debug)]
pub struct ScanResult {
    /// Trusted, uncancelled, state-changing records in log order.
    pub ops: Vec<WalRecord>,
    pub report: RecoveryReport,
    /// Byte length of the trusted prefix.
    pub valid_len: usize,
    /// The seq an append after recovery should use.
    pub next_seq: u64,
}

/// Scan a log image: decode frames until the first torn or corrupt one,
/// resolve compensation records, and report. Never panics and never trusts
/// bytes past a corruption, whatever the input.
pub fn scan(log: &[u8]) -> ScanResult {
    let mut records: Vec<WalRecord> = Vec::new();
    let mut gapless = true;
    let mut off = 0;
    while off + RECORD_BYTES <= log.len() {
        let frame: &[u8; RECORD_BYTES] = log[off..off + RECORD_BYTES].try_into().unwrap();
        let decoded = match WalRecord::decode(frame) {
            Ok(r) => Some(r),
            #[cfg(feature = "mut-recovery-skip-checksum")]
            // The mutation under test: a complete frame whose checksum
            // fails is applied anyway instead of truncating the tail.
            Err(FrameError::BadChecksum) => WalRecord::decode_fields(frame).ok(),
            Err(_) => None,
        };
        match decoded {
            Some(r) if r.seq == records.len() as u64 + 1 => {
                records.push(r);
                off += RECORD_BYTES;
            }
            Some(_) => {
                // An out-of-sequence record: interior loss. Nothing after
                // it can be trusted either.
                gapless = false;
                break;
            }
            None => break,
        }
    }
    let dropped_bytes = log.len() - off;
    let truncated = (dropped_bytes as u64).div_ceil(RECORD_BYTES as u64);

    let cancelled: std::collections::HashSet<u64> = records
        .iter()
        .filter(|r| r.op == WalOp::Abort)
        .map(|r| r.key)
        .collect();
    let ops: Vec<WalRecord> = records
        .iter()
        .filter(|r| r.op != WalOp::Abort && !cancelled.contains(&r.seq))
        .copied()
        .collect();
    let report = RecoveryReport {
        applied: ops.len() as u64,
        ignored: records.len() as u64 - ops.len() as u64,
        truncated,
        last_seq: records.last().map_or(0, |r| r.seq),
        gapless,
    };
    ScanResult {
        ops,
        report,
        valid_len: off,
        next_seq: records.len() as u64 + 1,
    }
}

fn replay_into(db: &AleCacheDb, ops: &[WalRecord], skip_seq: Option<u64>) {
    for r in ops {
        if Some(r.seq) == skip_seq {
            continue;
        }
        match r.op {
            WalOp::Set => {
                db.set(r.key, r.value);
            }
            WalOp::Remove => {
                db.remove(r.key);
            }
            WalOp::Clear => db.clear(),
            WalOp::Abort => {}
        }
    }
}

// ---------------------------------------------------------------------------
// The durable database
// ---------------------------------------------------------------------------

/// [`AleCacheDb`] behind the write-ahead protocol: every mutation is
/// logged before it commits and acknowledged only after both, so a crash
/// at any point loses at most unacknowledged work. See the module docs.
pub struct DurableCacheDb {
    db: AleCacheDb,
    wal: Arc<Wal>,
}

impl DurableCacheDb {
    /// Wrap a fresh database over (typically empty) log `wal`. To rebuild
    /// from an existing log use [`recover`].
    pub fn new(ale: &Arc<Ale>, config: DbConfig, wal: Arc<Wal>) -> Self {
        DurableCacheDb {
            db: AleCacheDb::new(ale, config),
            wal,
        }
    }

    /// The log this database appends to.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The wrapped in-memory database.
    pub fn inner(&self) -> &AleCacheDb {
        &self.db
    }

    /// Post-quiescence oracle passthrough.
    pub fn versions_even(&self) -> bool {
        self.db.versions_even()
    }

    /// Heal after a poisoning panic: clear every poison flag and rebuild
    /// the whole database from the log (skipping `skip_seq`, the healing
    /// caller's own in-flight record — it will retry its operation
    /// itself). Stop-the-world by intent: each replayed operation runs
    /// under the normal exclusive critical sections, and concurrent
    /// in-flight operations may observe the rebuild mid-way; heal follows
    /// a panic, which is already an exceptional, correctness-over-service
    /// path.
    pub fn heal(&self, skip_seq: Option<u64>) -> RecoveryReport {
        self.db.clear_all_poison();
        let image = self.wal.bytes();
        let scanned = scan(&image);
        self.db.clear();
        replay_into(&self.db, &scanned.ops, skip_seq);
        scanned.report
    }

    /// Run a logged mutation's critical-section work. A [`LockPoison`]
    /// unwind heals and retries once; any other non-crash unwind appends a
    /// compensation record for `seq` (the commit did not happen, so
    /// recovery must not replay it) and resumes unwinding.
    fn run_logged<T>(&self, seq: u64, f: impl Fn() -> T) -> T {
        match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(v) => v,
            Err(payload) => {
                if payload.downcast_ref::<ale_htm::InjectedCrash>().is_some() {
                    resume_unwind(payload);
                }
                if payload.downcast_ref::<LockPoison>().is_some() {
                    self.heal(Some(seq));
                    return f();
                }
                self.wal.append_abort(seq);
                resume_unwind(payload)
            }
        }
    }

    /// Run a read-only operation; a [`LockPoison`] unwind heals and
    /// retries once (a panicking writer must not wedge readers).
    fn run_read<T>(&self, f: impl Fn() -> T) -> T {
        match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(v) => v,
            Err(payload) => {
                if payload.downcast_ref::<LockPoison>().is_some() {
                    self.heal(None);
                    return f();
                }
                resume_unwind(payload)
            }
        }
    }
}

impl KyotoDb for DurableCacheDb {
    fn set(&self, key: u64, value: Value) -> bool {
        let seq = self.wal.append(WalOp::Set, key, value);
        inject::crash_at(CrashPoint::PreCommit);
        let newly = self.run_logged(seq, || self.db.set(key, value));
        inject::crash_at(CrashPoint::PostCommit);
        newly
    }

    fn get(&self, key: u64) -> Option<Value> {
        self.run_read(|| self.db.get(key))
    }

    fn remove(&self, key: u64) -> bool {
        let seq = self.wal.append(WalOp::Remove, key, 0);
        inject::crash_at(CrashPoint::PreCommit);
        let removed = self.run_logged(seq, || self.db.remove(key));
        inject::crash_at(CrashPoint::PostCommit);
        removed
    }

    fn count(&self) -> usize {
        self.run_read(|| self.db.count())
    }

    fn clear(&self) {
        let seq = self.wal.append(WalOp::Clear, 0, 0);
        inject::crash_at(CrashPoint::PreCommit);
        self.run_logged(seq, || self.db.clear());
        inject::crash_at(CrashPoint::PostCommit);
    }
}

/// Rebuild a fresh database from `wal` — the restart path after a crash.
///
/// Scans the log, truncates the torn/corrupt tail (rewinding the medium so
/// post-recovery appends stay gapless), replays the trusted records in
/// order, and reports. Emits `recovery_applied` (always) and
/// `recovery_truncated` (when anything was dropped) trace events.
pub fn recover(
    ale: &Arc<Ale>,
    config: DbConfig,
    wal: Arc<Wal>,
) -> (DurableCacheDb, RecoveryReport) {
    let image = wal.bytes();
    let scanned = scan(&image);
    wal.reset_to(scanned.valid_len, scanned.next_seq);
    let db = DurableCacheDb::new(ale, config, wal);
    replay_into(&db.db, &scanned.ops, None);
    let report = scanned.report;
    ale_trace::emit(ale_trace::TraceEvent::recovery_applied(
        wal_label(),
        report.applied,
    ));
    if report.truncated > 0 || report.ignored > 0 {
        ale_trace::emit(ale_trace::TraceEvent::recovery_truncated(
            wal_label(),
            report.truncated,
            report.ignored,
        ));
    }
    (db, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, op: WalOp, key: u64, value: u64) -> WalRecord {
        WalRecord {
            seq,
            op,
            key,
            value,
        }
    }

    #[test]
    fn record_round_trips() {
        for (i, op) in [WalOp::Set, WalOp::Remove, WalOp::Clear, WalOp::Abort]
            .into_iter()
            .enumerate()
        {
            let r = rec(i as u64 + 1, op, 0xABCD + i as u64, 0x1234_5678 + i as u64);
            let frame = r.encode();
            assert_eq!(WalRecord::decode(&frame), Ok(r));
        }
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let frame = rec(7, WalOp::Set, 42, 99).encode();
        for i in 0..RECORD_BYTES {
            let mut bad = frame;
            bad[i] ^= 0x01;
            assert!(
                WalRecord::decode(&bad).is_err(),
                "flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn scan_truncates_partial_tail_and_keeps_prefix() {
        let mut log = Vec::new();
        log.extend_from_slice(&rec(1, WalOp::Set, 1, 10).encode());
        log.extend_from_slice(&rec(2, WalOp::Set, 2, 20).encode());
        log.extend_from_slice(&rec(3, WalOp::Remove, 1, 0).encode()[..20]);
        let s = scan(&log);
        assert_eq!(s.ops.len(), 2);
        assert_eq!(s.report.applied, 2);
        assert_eq!(s.report.truncated, 1);
        assert_eq!(s.report.last_seq, 2);
        assert!(s.report.gapless);
        assert_eq!(s.valid_len, 2 * RECORD_BYTES);
        assert_eq!(s.next_seq, 3);
    }

    #[test]
    fn scan_stops_at_corrupt_frame_and_drops_the_rest() {
        let mut log = Vec::new();
        log.extend_from_slice(&rec(1, WalOp::Set, 1, 10).encode());
        let mut bad = rec(2, WalOp::Set, 2, 20).encode();
        bad[33] ^= 0xFF; // value corrupted: checksum fails
        log.extend_from_slice(&bad);
        log.extend_from_slice(&rec(3, WalOp::Set, 3, 30).encode());
        let s = scan(&log);
        #[cfg(not(feature = "mut-recovery-skip-checksum"))]
        {
            assert_eq!(s.ops.len(), 1);
            assert_eq!(
                s.report.truncated, 2,
                "the corrupt frame and everything after"
            );
        }
        assert!(s.report.gapless);
    }

    #[test]
    fn scan_detects_interior_seq_gap() {
        let mut log = Vec::new();
        log.extend_from_slice(&rec(1, WalOp::Set, 1, 10).encode());
        log.extend_from_slice(&rec(3, WalOp::Set, 3, 30).encode());
        let s = scan(&log);
        assert_eq!(s.ops.len(), 1);
        assert!(!s.report.gapless);
    }

    #[test]
    fn abort_cancels_its_target() {
        let mut log = Vec::new();
        log.extend_from_slice(&rec(1, WalOp::Set, 1, 10).encode());
        log.extend_from_slice(&rec(2, WalOp::Set, 2, 20).encode());
        log.extend_from_slice(&rec(3, WalOp::Abort, 2, 0).encode());
        let s = scan(&log);
        assert_eq!(s.ops.len(), 1);
        assert_eq!(s.ops[0].key, 1);
        assert_eq!(s.report.applied, 1);
        assert_eq!(s.report.ignored, 2, "the cancelled record and its marker");
        assert_eq!(s.report.last_seq, 3);
    }

    #[test]
    fn scan_of_garbage_never_panics() {
        for len in [0usize, 1, 20, 47, 48, 49, 96, 200] {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let s = scan(&junk);
            assert_eq!(s.report.applied, 0);
            assert_eq!(s.valid_len, 0);
        }
    }
}
