//! The `wicked` workload: a port of Kyoto Cabinet's `kcwickedtest`
//! stress mix — each iteration performs a randomly chosen operation on a
//! random key, with occasional whole-database operations.
//!
//! Two paper-relevant variants:
//! * the default mixed workload (Figure 5's driver), and
//! * **`nomutate`** — lookups only, over a key range prepopulated so that
//!   a configurable fraction of lookups miss. The paper reports that on
//!   T2-2, "42 % of the executions did not find the object they were
//!   seeking, and hence succeeded using SWOpt"; `WickedConfig::nomutate`
//!   reproduces that ratio by prepopulating 58 % of the key space.

use ale_vtime::Rng;

use crate::db::{KyotoDb, Value};

/// Which operation an iteration performed (for workload statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WickedOp {
    Set,
    Get,
    Remove,
    Count,
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WickedConfig {
    /// Size of the key space.
    pub key_space: u64,
    /// Lookups only (the `nomutate` variant).
    pub nomutate: bool,
    /// Fraction (per mille) of the key space prepopulated before the run.
    pub prefill_permille: u64,
    /// Per-iteration probability (per mille) of a whole-database `count`
    /// (the expensive exclusive op; `kcwickedtest` sprinkles these in).
    pub count_permille: u64,
    /// Payload words per record (Kyoto's records carry byte-string bodies;
    /// this sizes the equivalent transactional footprint).
    pub payload_cells: usize,
}

impl Default for WickedConfig {
    fn default() -> Self {
        WickedConfig {
            key_space: 1 << 16,
            nomutate: false,
            prefill_permille: 580,
            count_permille: 1,
            payload_cells: 0,
        }
    }
}

impl WickedConfig {
    /// The `nomutate` variant tuned for the paper's 42 % miss rate.
    pub fn nomutate(key_space: u64) -> Self {
        WickedConfig {
            key_space,
            nomutate: true,
            prefill_permille: 580,
            count_permille: 0,
            payload_cells: 0,
        }
    }
}

/// Deterministically prefill `db` per the config (call once, before
/// spawning workers).
pub fn prefill(db: &dyn KyotoDb, cfg: &WickedConfig, seed: u64) {
    let mut rng = Rng::new(seed ^ 0x5EED_F111);
    let target = cfg.key_space * cfg.prefill_permille / 1000;
    // Random distinct-ish keys: walk the space and keep prefill_permille.
    let mut inserted = 0;
    for key in 0..cfg.key_space {
        if inserted >= target {
            break;
        }
        if rng.gen_ratio(cfg.prefill_permille, 1000) {
            db.set(key, value_for(key));
            inserted += 1;
        }
    }
}

/// The canonical value bound to a key (so readers can verify bindings).
#[inline]
pub fn value_for(key: u64) -> Value {
    key.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1
}

/// Statistics one worker accumulates.
#[derive(Debug, Default, Clone, Copy)]
pub struct WickedStats {
    pub ops: u64,
    pub gets: u64,
    pub get_hits: u64,
    pub sets: u64,
    pub removes: u64,
    pub counts: u64,
}

impl WickedStats {
    pub fn merge(&mut self, other: &WickedStats) {
        self.ops += other.ops;
        self.gets += other.gets;
        self.get_hits += other.get_hits;
        self.sets += other.sets;
        self.removes += other.removes;
        self.counts += other.counts;
    }

    /// Fraction of lookups that missed (the paper's 42 % statistic).
    pub fn miss_rate(&self) -> f64 {
        if self.gets == 0 {
            return 0.0;
        }
        1.0 - self.get_hits as f64 / self.gets as f64
    }
}

/// Run one wicked iteration. Returns the op performed.
pub fn wicked_op(
    db: &dyn KyotoDb,
    cfg: &WickedConfig,
    rng: &mut Rng,
    stats: &mut WickedStats,
) -> WickedOp {
    stats.ops += 1;
    let key = rng.gen_range(cfg.key_space);
    if cfg.nomutate {
        stats.gets += 1;
        if let Some(v) = db.get(key) {
            debug_assert_eq!(v, value_for(key));
            stats.get_hits += 1;
        }
        return WickedOp::Get;
    }
    if cfg.count_permille > 0 && rng.gen_ratio(cfg.count_permille, 1000) {
        stats.counts += 1;
        std::hint::black_box(db.count());
        return WickedOp::Count;
    }
    // kcwickedtest-style mix: ~60 % get, ~25 % set, ~15 % remove.
    match rng.gen_range(100) {
        0..=59 => {
            stats.gets += 1;
            if let Some(v) = db.get(key) {
                debug_assert_eq!(v, value_for(key));
                stats.get_hits += 1;
            }
            WickedOp::Get
        }
        60..=84 => {
            stats.sets += 1;
            db.set(key, value_for(key));
            WickedOp::Set
        }
        _ => {
            stats.removes += 1;
            db.remove(key);
            WickedOp::Remove
        }
    }
}

/// Run `ops` wicked iterations with a worker-specific random stream.
pub fn wicked_run(db: &dyn KyotoDb, cfg: &WickedConfig, seed: u64, ops: u64) -> WickedStats {
    let mut rng = Rng::new(seed);
    let mut stats = WickedStats::default();
    for _ in 0..ops {
        wicked_op(db, cfg, &mut rng, &mut stats);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trylockspin::TrylockspinDb;

    #[test]
    fn prefill_hits_target_fraction() {
        let db = TrylockspinDb::new(1 << 10, 1 << 16);
        let cfg = WickedConfig {
            key_space: 10_000,
            ..Default::default()
        };
        prefill(&db, &cfg, 1);
        let n = db.count() as f64 / 10_000.0;
        assert!((0.54..0.62).contains(&n), "prefill fraction {n}");
    }

    #[test]
    fn nomutate_miss_rate_matches_paper() {
        let db = TrylockspinDb::new(1 << 10, 1 << 16);
        let cfg = WickedConfig::nomutate(20_000);
        prefill(&db, &cfg, 2);
        let stats = wicked_run(&db, &cfg, 3, 20_000);
        assert_eq!(stats.gets, 20_000);
        assert_eq!(stats.sets + stats.removes + stats.counts, 0);
        let miss = stats.miss_rate();
        assert!(
            (0.38..0.46).contains(&miss),
            "nomutate should miss ~42 % of lookups, got {miss:.3}"
        );
    }

    #[test]
    fn mixed_run_exercises_all_ops() {
        let db = TrylockspinDb::new(1 << 10, 1 << 16);
        let cfg = WickedConfig {
            key_space: 5_000,
            count_permille: 5,
            ..Default::default()
        };
        prefill(&db, &cfg, 4);
        let stats = wicked_run(&db, &cfg, 5, 20_000);
        assert_eq!(stats.ops, 20_000);
        assert!(stats.gets > 10_000, "{stats:?}");
        assert!(stats.sets > 3_000, "{stats:?}");
        assert!(stats.removes > 2_000, "{stats:?}");
        assert!(stats.counts > 0, "{stats:?}");
        assert!(stats.get_hits > 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = WickedStats {
            ops: 1,
            gets: 1,
            get_hits: 1,
            ..Default::default()
        };
        let b = WickedStats {
            ops: 2,
            gets: 1,
            get_hits: 0,
            sets: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.ops, 3);
        assert_eq!(a.gets, 2);
        assert_eq!(a.get_hits, 1);
        assert_eq!(a.sets, 1);
        assert!((a.miss_rate() - 0.5).abs() < 1e-9);
    }
}
