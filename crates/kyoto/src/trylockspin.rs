//! The `trylockspin` baseline: Kyoto Cabinet's hand-tuned locking idiom,
//! with no elision at all.
//!
//! Per the paper's accounting (§5): a lookup first takes only the key's
//! slot lock and searches; on a **miss** it is done — "only the cost of a
//! single acquisition of a slot lock is paid". On a **hit** it must also
//! acquire the database RW-lock (shared) for the mutation bookkeeping —
//! "the remaining … cases incur an additional acquisition attempt of the
//! RW-lock, which is usually successful when the number of threads is
//! low". The attempt is a *try*: if the RW-lock is busy the slot lock is
//! dropped and the operation restarts in the canonical RW-then-slot order
//! (avoiding the lock-order inversion deadlock).

use ale_sync::{RawLock, RawRwLock, RwLock, SpinLock};

use crate::db::{slot_of, KyotoDb, Slot, Value, SLOT_NUM};
use ale_hashmap::node::NIL;

/// Kyoto-style database with spin/try locking and no elision.
pub struct TrylockspinDb {
    mlock: RwLock,
    slot_locks: Vec<SpinLock>,
    slots: Vec<Slot>,
}

impl TrylockspinDb {
    pub fn new(buckets_per_slot: usize, capacity_per_slot: u64) -> Self {
        Self::with_payload(buckets_per_slot, capacity_per_slot, 0)
    }

    /// As [`TrylockspinDb::new`] with `payload_cells` words per record.
    pub fn with_payload(
        buckets_per_slot: usize,
        capacity_per_slot: u64,
        payload_cells: usize,
    ) -> Self {
        TrylockspinDb {
            mlock: RwLock::new(),
            slot_locks: (0..SLOT_NUM).map(|_| SpinLock::new()).collect(),
            slots: (0..SLOT_NUM)
                .map(|_| Slot::with_payload(buckets_per_slot, capacity_per_slot, payload_cells))
                .collect(),
        }
    }

    /// The hit path's record work (caller holds mlock-shared + slot lock).
    fn touch_and_read(slot: &Slot, key: u64) -> Option<Value> {
        let (prev, id) = slot.search(key);
        if id == NIL {
            return None;
        }
        let val = slot.slab.node(id).val.get();
        if slot.payload_cells() > 0 {
            std::hint::black_box(slot.read_payload(id));
        }
        slot.move_to_front(key, prev, id);
        Some(val)
    }
}

impl KyotoDb for TrylockspinDb {
    fn set(&self, key: u64, value: Value) -> bool {
        let si = slot_of(key);
        let new_id = self.slots[si].slab.alloc(key, value);
        self.mlock.acquire_shared();
        self.slot_locks[si].acquire();
        let slot = &self.slots[si];
        let (prev, id) = slot.search(key);
        let inserted = if id != NIL {
            slot.slab.node(id).val.set(value);
            if slot.payload_cells() > 0 {
                slot.write_payload(id, value);
            }
            slot.move_to_front(key, prev, id);
            false
        } else {
            if slot.payload_cells() > 0 {
                slot.write_payload(new_id, value);
            }
            slot.link_front(key, new_id);
            true
        };
        self.slot_locks[si].release();
        self.mlock.release_shared();
        if !inserted {
            slot.slab.free(new_id);
        }
        inserted
    }

    fn get(&self, key: u64) -> Option<Value> {
        let si = slot_of(key);
        let slot = &self.slots[si];
        // Fast path: slot lock only.
        self.slot_locks[si].acquire();
        let (_, id) = slot.search(key);
        if id == NIL {
            // Miss: no RW-lock needed at all.
            self.slot_locks[si].release();
            return None;
        }
        // Hit: try to add the RW-lock without giving up the slot.
        if self.mlock.try_acquire_shared() {
            let val = Self::touch_and_read(slot, key);
            self.slot_locks[si].release();
            self.mlock.release_shared();
            return val;
        }
        // Busy: restart in canonical order (mlock, then slot).
        self.slot_locks[si].release();
        self.mlock.acquire_shared();
        self.slot_locks[si].acquire();
        let val = Self::touch_and_read(slot, key);
        self.slot_locks[si].release();
        self.mlock.release_shared();
        val
    }

    fn remove(&self, key: u64) -> bool {
        let si = slot_of(key);
        self.mlock.acquire_shared();
        self.slot_locks[si].acquire();
        let slot = &self.slots[si];
        let (prev, id) = slot.search(key);
        let removed = id != NIL;
        if removed {
            slot.unlink(key, prev, id);
        }
        self.slot_locks[si].release();
        self.mlock.release_shared();
        if removed {
            slot.slab.free(id);
        }
        removed
    }

    fn count(&self) -> usize {
        self.mlock.acquire_excl();
        let mut n = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            self.slot_locks[i].acquire();
            n += slot.count();
            self.slot_locks[i].release();
        }
        self.mlock.release_excl();
        n
    }

    fn clear(&self) {
        self.mlock.acquire_excl();
        let mut freed: Vec<Vec<u64>> = Vec::with_capacity(SLOT_NUM);
        for (i, slot) in self.slots.iter().enumerate() {
            self.slot_locks[i].acquire();
            freed.push(slot.clear_collect());
            self.slot_locks[i].release();
        }
        self.mlock.release_excl();
        for (slot, ids) in self.slots.iter().zip(freed) {
            for id in ids {
                slot.slab.free(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let db = TrylockspinDb::new(64, 10_000);
        assert_eq!(db.get(1), None);
        assert!(db.set(1, 10));
        assert!(!db.set(1, 11));
        assert_eq!(db.get(1), Some(11));
        assert_eq!(db.count(), 1);
        assert!(db.remove(1));
        assert!(!db.remove(1));
        assert_eq!(db.count(), 0);
    }

    #[test]
    fn clear_empties_and_ids_recycle() {
        let db = TrylockspinDb::new(64, 10_000);
        for k in 0..100 {
            db.set(k, k);
        }
        assert_eq!(db.count(), 100);
        db.clear();
        assert_eq!(db.count(), 0);
        for k in 0..100 {
            assert_eq!(db.get(k), None);
        }
        for k in 0..100 {
            db.set(k, k + 1);
        }
        assert_eq!(db.count(), 100);
    }

    #[test]
    fn concurrent_threads_preserve_kv_binding() {
        let db = TrylockspinDb::new(256, 100_000);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let db = &db;
                s.spawn(move || {
                    let mut rng = ale_vtime::Rng::new(t);
                    for _ in 0..3000 {
                        let k = rng.gen_range(300);
                        match rng.gen_range(4) {
                            0 => {
                                db.set(k, k * 7);
                            }
                            1 => {
                                db.remove(k);
                            }
                            _ => {
                                if let Some(v) = db.get(k) {
                                    assert_eq!(v, k * 7);
                                }
                            }
                        }
                    }
                });
            }
        });
    }
}
