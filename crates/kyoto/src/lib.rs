//! # ale-kyoto — the Kyoto Cabinet experiment substrate (§5, Figure 5)
//!
//! The paper's "real example" benchmark: a Kyoto-Cabinet-`CacheDB`-style
//! in-memory hash database whose locking structure — a top-level
//! readers-writer lock over 16 slot locks — produces natural two-level
//! critical-section nesting:
//!
//! * [`AleCacheDb`] — ALE-integrated: external RW-lock critical section
//!   (HTM + SWOpt enabled) with a nested slot-lock critical section
//!   (HTM only), per the paper's best configuration;
//! * [`TrylockspinDb`] — Kyoto's hand-tuned `trylockspin` idiom, the
//!   uninstrumented baseline;
//! * [`wicked`] — the `kcwickedtest`-style random-operation workload,
//!   including the `nomutate` variant whose 42 %-miss statistics the paper
//!   reports.
//!
//! Kyoto Cabinet itself is a C++ on-disk/in-memory DBM; this reproduction
//! keeps exactly the pieces the experiment stresses (the locking structure
//! and operation mix) and replaces byte-string records with fixed-size
//! values — see DESIGN.md for the substitution argument.

pub mod ale_db;
pub mod db;
pub mod trylockspin;
pub mod wal;
pub mod wicked;

pub use ale_db::{AleCacheDb, DbConfig};
pub use db::{slot_of, KyotoDb, Slot, Value, SLOT_NUM};
pub use trylockspin::TrylockspinDb;
pub use wal::{
    recover, scan, DurableCacheDb, FrameError, RecoveryReport, ScanResult, Wal, WalOp, WalRecord,
    RECORD_BYTES,
};
pub use wicked::{prefill, value_for, wicked_op, wicked_run, WickedConfig, WickedOp, WickedStats};
