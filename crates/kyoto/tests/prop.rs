//! Property-based tests: both Kyoto-style databases against a reference
//! model, under arbitrary operation scripts.

use std::collections::HashMap;

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_kyoto::{AleCacheDb, DbConfig, KyotoDb, TrylockspinDb};
use ale_vtime::Platform;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set(u64, u64),
    Get(u64),
    Remove(u64),
    Count,
    Clear,
}

fn op_strategy(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..keys, any::<u64>()).prop_map(|(k, v)| Op::Set(k, v)),
        5 => (0..keys).prop_map(Op::Get),
        3 => (0..keys).prop_map(Op::Remove),
        1 => Just(Op::Count),
        1 => Just(Op::Clear),
    ]
}

fn check_db(db: &dyn KyotoDb, script: &[Op]) -> Result<(), TestCaseError> {
    let mut model: HashMap<u64, u64> = HashMap::new();
    for op in script {
        match *op {
            Op::Set(k, v) => {
                prop_assert_eq!(db.set(k, v), !model.contains_key(&k));
                model.insert(k, v);
            }
            Op::Get(k) => {
                prop_assert_eq!(db.get(k), model.get(&k).copied());
            }
            Op::Remove(k) => {
                prop_assert_eq!(db.remove(k), model.remove(&k).is_some());
            }
            Op::Count => {
                prop_assert_eq!(db.count(), model.len());
            }
            Op::Clear => {
                db.clear();
                model.clear();
            }
        }
    }
    prop_assert_eq!(db.count(), model.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The trylockspin baseline matches the model.
    #[test]
    fn trylockspin_matches_model(script in proptest::collection::vec(op_strategy(48), 0..100)) {
        let db = TrylockspinDb::new(64, 4096);
        check_db(&db, &script)?;
    }

    /// The ALE database matches the model with HTM available.
    #[test]
    fn ale_db_matches_model_htm(script in proptest::collection::vec(op_strategy(48), 0..100)) {
        let ale = Ale::new(AleConfig::new(Platform::testbed()).with_seed(9), StaticPolicy::new(4, 8));
        let db = AleCacheDb::new(&ale, DbConfig { buckets_per_slot: 64, capacity_per_slot: 4096, payload_cells: 0 });
        check_db(&db, &script)?;
    }

    /// The ALE database matches the model with SWOpt only (T2-2).
    #[test]
    fn ale_db_matches_model_swopt(script in proptest::collection::vec(op_strategy(48), 0..100)) {
        let ale = Ale::new(AleConfig::new(Platform::t2()).with_seed(10), StaticPolicy::new(0, 8));
        let db = AleCacheDb::new(&ale, DbConfig { buckets_per_slot: 64, capacity_per_slot: 4096, payload_cells: 0 });
        check_db(&db, &script)?;
    }

    /// Rock's fragile HTM never corrupts the database.
    #[test]
    fn ale_db_matches_model_rock(script in proptest::collection::vec(op_strategy(48), 0..100)) {
        let ale = Ale::new(AleConfig::new(Platform::rock()).with_seed(11), StaticPolicy::new(3, 6));
        let db = AleCacheDb::new(&ale, DbConfig { buckets_per_slot: 64, capacity_per_slot: 4096, payload_cells: 0 });
        check_db(&db, &script)?;
    }
}
