//! End-to-end tests of the ALE-integrated CacheDB: nested critical
//! sections (RW outer + slot inner), SWOpt miss fast path, and consistency
//! under simulated contention on every platform.

use std::sync::Arc;

use ale_core::{AdaptivePolicy, Ale, AleConfig, ExecMode, StaticPolicy};
use ale_kyoto::{
    prefill, value_for, wicked_run, AleCacheDb, DbConfig, KyotoDb, TrylockspinDb, WickedConfig,
};
use ale_vtime::{Platform, Sim};

fn db_with(platform: Platform) -> (Arc<Ale>, AleCacheDb) {
    let ale = Ale::new(
        AleConfig::new(platform).with_seed(31),
        StaticPolicy::new(4, 16),
    );
    let db = AleCacheDb::new(&ale, DbConfig::default());
    (ale, db)
}

#[test]
fn sequential_semantics() {
    let (_ale, db) = db_with(Platform::testbed());
    assert_eq!(db.get(7), None);
    assert!(db.set(7, 70));
    assert!(!db.set(7, 71));
    assert_eq!(db.get(7), Some(71));
    assert_eq!(db.count(), 1);
    assert!(db.remove(7));
    assert!(!db.remove(7));
    assert_eq!(db.count(), 0);
    for k in 0..500 {
        db.set(k, value_for(k));
    }
    assert_eq!(db.count(), 500);
    db.clear();
    assert_eq!(db.count(), 0);
    assert_eq!(db.get(3), None);
}

#[test]
fn repeated_gets_touch_and_stay_consistent() {
    let (_ale, db) = db_with(Platform::testbed());
    for k in 0..100 {
        db.set(k, value_for(k));
    }
    // Repeated lookups exercise move-to-front repeatedly.
    for _ in 0..5 {
        for k in 0..100 {
            assert_eq!(db.get(k), Some(value_for(k)));
        }
    }
    assert_eq!(db.count(), 100);
}

fn hammer(platform: Platform, lanes: usize, seed: u64) {
    let (_ale, db) = db_with(platform.clone());
    let db = &db;
    let cfg = WickedConfig {
        key_space: 2_000,
        count_permille: 2,
        ..Default::default()
    };
    prefill(db as &dyn KyotoDb, &cfg, seed);
    Sim::new(platform, lanes).with_seed(seed).run(|lane| {
        let mut rng = lane.rng().clone();
        let mut stats = ale_kyoto::WickedStats::default();
        for _ in 0..400 {
            ale_kyoto::wicked_op(db as &dyn KyotoDb, &cfg, &mut rng, &mut stats);
        }
        stats
    });
    // Post-mortem consistency: every surviving key maps to its canonical
    // value, and count agrees with a fresh sweep.
    let mut live = 0;
    for k in 0..2_000u64 {
        if let Some(v) = db.get(k) {
            assert_eq!(v, value_for(k), "key {k}");
            live += 1;
        }
    }
    assert_eq!(db.count(), live);
}

#[test]
fn concurrent_wicked_testbed() {
    hammer(Platform::testbed(), 8, 51);
}

#[test]
fn concurrent_wicked_haswell() {
    hammer(Platform::haswell(), 8, 52);
}

#[test]
fn concurrent_wicked_rock() {
    hammer(Platform::rock(), 8, 53);
}

#[test]
fn concurrent_wicked_t2_no_htm() {
    hammer(Platform::t2(), 8, 54);
}

#[test]
fn nomutate_misses_succeed_via_swopt() {
    // The paper's inline statistic: with HTM disabled (T2-2), nomutate
    // lookups that miss complete in SWOpt mode without any lock.
    let ale = Ale::new(
        AleConfig::new(Platform::t2()).with_seed(61),
        StaticPolicy::new(0, 16),
    );
    let db = AleCacheDb::new(&ale, DbConfig::default());
    let cfg = WickedConfig::nomutate(10_000);
    prefill(&db as &dyn KyotoDb, &cfg, 61);
    let stats = wicked_run(&db as &dyn KyotoDb, &cfg, 62, 10_000);
    let miss = stats.miss_rate();
    assert!((0.38..0.46).contains(&miss), "miss rate {miss:.3}");

    let report = ale.report();
    let mlock = report.lock("mlock").unwrap();
    let get_granule = mlock
        .granules
        .iter()
        .find(|g| g.context.contains("CacheDb::get"))
        .expect("get granule");
    let swopt_succ = get_granule.successes[ExecMode::SwOpt.index()];
    // All gets run their SWOpt path; misses complete there *without* the
    // nested slot CS, hits complete there too (via the nested CS) — so
    // SWOpt successes should be ~all executions.
    assert!(
        swopt_succ as f64 >= 0.9 * get_granule.executions as f64,
        "gets should complete via the external SWOpt path: {report}"
    );
}

#[test]
fn baseline_and_ale_db_agree() {
    let (_ale, ale_db) = db_with(Platform::testbed());
    let base = TrylockspinDb::new(1 << 12, 1 << 16);
    let mut rng = ale_vtime::Rng::new(77);
    for _ in 0..5_000 {
        let k = rng.gen_range(500);
        match rng.gen_range(4) {
            0 => {
                assert_eq!(ale_db.set(k, value_for(k)), base.set(k, value_for(k)));
            }
            1 => {
                assert_eq!(ale_db.remove(k), base.remove(k));
            }
            _ => {
                assert_eq!(ale_db.get(k), base.get(k), "key {k}");
            }
        }
    }
    assert_eq!(ale_db.count(), base.count());
}

#[test]
fn adaptive_policy_drives_the_nested_db() {
    let ale = Ale::new(
        AleConfig::new(Platform::haswell()).with_seed(71),
        AdaptivePolicy::new(),
    );
    let db = AleCacheDb::new(&ale, DbConfig::default());
    let db = &db;
    let cfg = WickedConfig {
        key_space: 1_000,
        count_permille: 0,
        ..Default::default()
    };
    prefill(db as &dyn KyotoDb, &cfg, 71);
    Sim::new(Platform::haswell(), 6).with_seed(72).run(|lane| {
        let mut rng = lane.rng().clone();
        let mut stats = ale_kyoto::WickedStats::default();
        for _ in 0..1200 {
            ale_kyoto::wicked_op(db as &dyn KyotoDb, &cfg, &mut rng, &mut stats);
        }
    });
    let mut live = 0;
    for k in 0..1_000u64 {
        if let Some(v) = db.get(k) {
            assert_eq!(v, value_for(k));
            live += 1;
        }
    }
    assert_eq!(db.count(), live);
}

#[test]
fn exclusive_ops_interleave_safely_with_swopt_readers() {
    let (_ale, db) = db_with(Platform::testbed());
    let db = &db;
    for k in 0..300 {
        db.set(k, value_for(k));
    }
    Sim::new(Platform::testbed(), 4).with_seed(81).run(|lane| {
        let mut rng = lane.rng().clone();
        if lane.id() == 0 {
            for _ in 0..20 {
                std::hint::black_box(db.count());
                db.clear();
                for k in 0..300 {
                    db.set(k, value_for(k));
                }
            }
        } else {
            for _ in 0..2_000 {
                let k = rng.gen_range(300);
                if let Some(v) = db.get(k) {
                    assert_eq!(v, value_for(k), "stale/foreign value for {k}");
                }
            }
        }
    });
    assert_eq!(db.count(), 300);
}

#[test]
fn forced_version_bump_keeps_results_correct() {
    // Ablation A1's "always bump" arm must be semantically identical —
    // only slower. Run the same script against both configurations.
    let mk = |force: bool| {
        let mut cfg = AleConfig::new(Platform::testbed()).with_seed(91);
        if force {
            cfg = cfg.with_forced_version_bump();
        }
        let ale = Ale::new(cfg, StaticPolicy::new(4, 8));
        AleCacheDb::new(
            &ale,
            DbConfig {
                buckets_per_slot: 64,
                capacity_per_slot: 4096,
                payload_cells: 0,
            },
        )
    };
    let a = mk(false);
    let b = mk(true);
    let mut rng = ale_vtime::Rng::new(92);
    for _ in 0..3_000 {
        let k = rng.gen_range(200);
        match rng.gen_range(4) {
            0 => assert_eq!(a.set(k, value_for(k)), b.set(k, value_for(k))),
            1 => assert_eq!(a.remove(k), b.remove(k)),
            _ => assert_eq!(a.get(k), b.get(k)),
        }
    }
    assert_eq!(a.count(), b.count());
}

#[test]
fn payload_records_stay_consistent() {
    // Records with multi-word payload bodies (modelling Kyoto's byte
    // strings) must stay internally consistent through all three modes.
    let ale = Ale::new(
        AleConfig::new(Platform::rock()).with_seed(95),
        StaticPolicy::new(4, 8),
    );
    let db = AleCacheDb::new(
        &ale,
        DbConfig {
            buckets_per_slot: 64,
            capacity_per_slot: 4096,
            payload_cells: 24,
        },
    );
    let db = &db;
    for k in 0..200 {
        db.set(k, value_for(k));
    }
    Sim::new(Platform::rock(), 6).with_seed(96).run(|lane| {
        let mut rng = lane.rng().clone();
        for _ in 0..300 {
            let k = rng.gen_range(300);
            match rng.gen_range(5) {
                0 => {
                    db.set(k, value_for(k));
                }
                1 => {
                    db.remove(k);
                }
                _ => {
                    if let Some(v) = db.get(k) {
                        assert_eq!(v, value_for(k));
                    }
                }
            }
        }
    });
    let mut live = 0;
    for k in 0..300u64 {
        if db.get(k).is_some() {
            live += 1;
        }
    }
    assert_eq!(db.count(), live);
}
