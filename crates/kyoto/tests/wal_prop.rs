//! Property-based tests for the WAL codec and recovery scan: round-trip
//! fidelity, single-bit-flip detection, and the "never over-apply"
//! guarantee on arbitrarily damaged logs.
//!
//! Compiled out under the `mut-*` durability mutations: those deliberately
//! break exactly these properties (that is what `ale-check selftest`
//! proves), so this file asserts the clean build only.
#![cfg(not(any(
    feature = "mut-wal-ack-before-durable",
    feature = "mut-recovery-skip-checksum"
)))]

use std::collections::HashMap;

use ale_kyoto::wal::{scan, WalOp, WalRecord, RECORD_BYTES};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        4 => Just(WalOp::Set),
        3 => Just(WalOp::Remove),
        1 => Just(WalOp::Clear),
    ]
}

/// A well-formed log of `n` records (no compensation records, so replay
/// equals a plain fold over the prefix).
fn log_strategy() -> impl Strategy<Value = Vec<WalRecord>> {
    proptest::collection::vec((op_strategy(), 0u64..24, any::<u64>()), 0..40).prop_map(|ops| {
        ops.into_iter()
            .enumerate()
            .map(|(i, (op, key, value))| WalRecord {
                seq: i as u64 + 1,
                op,
                key,
                value,
            })
            .collect()
    })
}

fn encode_log(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * RECORD_BYTES);
    for r in records {
        out.extend_from_slice(&r.encode());
    }
    out
}

/// The sequential truth for a record prefix.
fn model_of(records: &[WalRecord]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for r in records {
        match r.op {
            WalOp::Set => {
                m.insert(r.key, r.value);
            }
            WalOp::Remove => {
                m.remove(&r.key);
            }
            WalOp::Clear => m.clear(),
            WalOp::Abort => {}
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every record round-trips through the frame codec.
    #[test]
    fn codec_round_trips(
        seq in 1u64..u64::MAX,
        op in op_strategy(),
        key in any::<u64>(),
        value in any::<u64>(),
    ) {
        let rec = WalRecord { seq, op, key, value };
        prop_assert_eq!(WalRecord::decode(&rec.encode()), Ok(rec));
    }

    /// Any single corrupted byte anywhere in the frame is detected: the
    /// checksum covers the header, the commit marker binds the tail to the
    /// seq, so no flip can slip through.
    #[test]
    fn any_byte_corruption_is_detected(
        seq in 1u64..u64::MAX,
        op in op_strategy(),
        key in any::<u64>(),
        value in any::<u64>(),
        pos in 0usize..RECORD_BYTES,
        mask in 1u8..=255,
    ) {
        let mut frame = WalRecord { seq, op, key, value }.encode();
        frame[pos] ^= mask;
        prop_assert!(WalRecord::decode(&frame).is_err(),
            "flip {mask:#04x} at byte {pos} must not decode");
    }

    /// Scanning arbitrary byte soup never panics and never trusts more
    /// bytes than it applied records.
    #[test]
    fn scan_of_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let s = scan(&bytes);
        prop_assert!(s.valid_len <= bytes.len());
        prop_assert_eq!(s.valid_len, s.report.applied as usize * RECORD_BYTES
            + s.report.ignored as usize * RECORD_BYTES);
        prop_assert_eq!(s.next_seq, s.report.last_seq + 1);
    }

    /// Recovery of a log truncated at an arbitrary byte boundary applies
    /// exactly the surviving whole-record prefix — no more, no less.
    #[test]
    fn truncated_log_applies_exactly_the_prefix(
        records in log_strategy(),
        cut_ppm in 0u64..=1_000_000,
    ) {
        let full = encode_log(&records);
        let cut = (full.len() as u64 * cut_ppm / 1_000_000) as usize;
        let s = scan(&full[..cut]);
        let whole = cut / RECORD_BYTES;
        prop_assert_eq!(s.report.applied as usize, whole);
        prop_assert_eq!(s.report.truncated as usize, (cut % RECORD_BYTES).div_ceil(RECORD_BYTES));
        prop_assert!(s.report.gapless);
        prop_assert_eq!(model_of(&s.ops), model_of(&records[..whole]));
    }

    /// Recovery of a log with one flipped byte applies exactly the records
    /// before the damaged frame, then stops — never a record after it.
    #[test]
    fn flipped_log_never_over_applies(
        records in log_strategy(),
        pos_ppm in 0u64..=999_999,
        mask in 1u8..=255,
    ) {
        if records.is_empty() {
            return Ok(());
        }
        let mut log = encode_log(&records);
        let pos = (log.len() as u64 * pos_ppm / 1_000_000) as usize;
        log[pos] ^= mask;
        let hit = pos / RECORD_BYTES;
        let s = scan(&log);
        prop_assert_eq!(s.report.applied as usize, hit,
            "must stop exactly at the corrupt frame");
        prop_assert!(s.report.gapless);
        prop_assert_eq!(model_of(&s.ops), model_of(&records[..hit]));
    }
}
