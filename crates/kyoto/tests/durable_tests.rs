//! Integration tests for the durable CacheDB: log → commit → ack protocol,
//! crash-point recovery, torn-tail truncation, and lock-poison healing.
#![cfg(not(any(
    feature = "mut-wal-ack-before-durable",
    feature = "mut-recovery-skip-checksum"
)))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

use ale_core::{Ale, AleConfig, StaticPolicy};
use ale_htm::inject::{clear_crash, crashed, install_crash, CrashPlan, CrashPoint, TornMode};
use ale_htm::InjectedCrash;
use ale_kyoto::{recover, DbConfig, DurableCacheDb, KyotoDb, Wal};
use ale_vtime::Platform;

/// The crash plan is process-global; tests that arm it must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

fn db_with(seed: u64) -> (Arc<Ale>, DurableCacheDb, Arc<Wal>) {
    let ale = Ale::new(
        AleConfig::new(Platform::testbed()).with_seed(seed),
        StaticPolicy::new(3, 8),
    );
    let wal = Arc::new(Wal::new());
    let db = DurableCacheDb::new(
        &ale,
        DbConfig {
            buckets_per_slot: 64,
            capacity_per_slot: 4096,
            payload_cells: 0,
        },
        Arc::clone(&wal),
    );
    (ale, db, wal)
}

fn fresh_recover(seed: u64, wal: &Arc<Wal>) -> (DurableCacheDb, ale_kyoto::RecoveryReport) {
    let ale = Ale::new(
        AleConfig::new(Platform::testbed()).with_seed(seed),
        StaticPolicy::new(3, 8),
    );
    recover(
        &ale,
        DbConfig {
            buckets_per_slot: 64,
            capacity_per_slot: 4096,
            payload_cells: 0,
        },
        Arc::clone(wal),
    )
}

#[test]
fn crash_free_recovery_reproduces_the_database() {
    let _guard = serial();
    clear_crash();
    let (_ale, db, wal) = db_with(1);
    for k in 0..40u64 {
        db.set(k, k * 100 + 7);
    }
    for k in (0..40u64).step_by(3) {
        db.remove(k);
    }
    db.set(5, 999);

    let (rdb, rep) = fresh_recover(2, &wal);
    assert!(rep.gapless);
    assert_eq!(rep.truncated, 0);
    assert_eq!(rep.ignored, 0);
    for k in 0..40u64 {
        assert_eq!(rdb.get(k), db.get(k), "key {k} diverged after recovery");
    }
    assert_eq!(rdb.count(), db.count());
    assert!(rdb.versions_even());
}

#[test]
fn pre_commit_crash_keeps_the_durable_record() {
    let _guard = serial();
    clear_crash();
    let (_ale, db, wal) = db_with(3);
    install_crash(CrashPlan::new(CrashPoint::PreCommit, 3));
    let mut acked = Vec::new();
    let mut killed = None;
    for k in 1..=10u64 {
        match catch_unwind(AssertUnwindSafe(|| db.set(k, k + 500))) {
            Ok(_) => acked.push(k),
            Err(p) => {
                assert!(p.downcast_ref::<InjectedCrash>().is_some());
                if killed.is_none() {
                    killed = Some(k);
                }
            }
        }
    }
    assert!(crashed());
    assert_eq!(acked, vec![1, 2]);
    assert_eq!(killed, Some(3));
    clear_crash();

    let (rdb, rep) = fresh_recover(4, &wal);
    // A pre-commit crash fires *after* the record became durable: the
    // killed operation must be recovered even though it never committed
    // in the dead process (it was simply never acknowledged).
    assert!(rep.gapless);
    assert_eq!(rep.applied, 3);
    for &k in &acked {
        assert_eq!(rdb.get(k), Some(k + 500), "acked key {k} lost");
    }
    assert_eq!(rdb.get(3), Some(503));
    assert_eq!(rdb.get(4), None, "post-crash append must not be durable");
    assert_eq!(rdb.count(), 3);
}

#[test]
fn mid_record_crash_truncates_the_torn_tail() {
    let _guard = serial();
    clear_crash();
    let (_ale, db, wal) = db_with(5);
    install_crash(CrashPlan::new(CrashPoint::MidRecord, 3).with_torn(TornMode::Truncate));
    for k in 1..=6u64 {
        let _ = catch_unwind(AssertUnwindSafe(|| db.set(k, k)));
    }
    assert!(crashed());
    clear_crash();

    let (rdb, rep) = fresh_recover(6, &wal);
    assert!(rep.gapless);
    assert_eq!(rep.applied, 2);
    assert_eq!(rep.truncated, 1, "the torn record is dropped, not applied");
    assert_eq!(rdb.get(3), None);
    assert_eq!(rdb.count(), 2);

    // The medium was rewound to the trusted prefix: post-recovery appends
    // continue with gapless seqs and survive the next recovery.
    rdb.set(99, 4242);
    let (rdb2, rep2) = fresh_recover(7, &wal);
    assert!(rep2.gapless);
    assert_eq!(rep2.applied, 3);
    assert_eq!(rdb2.get(99), Some(4242));
}

#[test]
fn flip_torn_tail_is_rejected_by_checksum() {
    let _guard = serial();
    clear_crash();
    let (_ale, db, wal) = db_with(8);
    install_crash(CrashPlan::new(CrashPoint::MidRecord, 2).with_torn(TornMode::Flip));
    for k in 1..=4u64 {
        let _ = catch_unwind(AssertUnwindSafe(|| db.set(k, k)));
    }
    assert!(crashed());
    clear_crash();

    // The flipped record is complete (valid marker, valid length) but its
    // checksum fails — recovery must truncate it, never apply it.
    let (rdb, rep) = fresh_recover(9, &wal);
    assert!(rep.gapless);
    assert_eq!(rep.applied, 1);
    assert_eq!(rep.truncated, 1);
    assert_eq!(rdb.count(), 1);
}

#[test]
fn crash_mid_migration_recovers_every_acked_write() {
    use ale_hashmap::{AleShardedMap, ShardedMapConfig};

    let _guard = serial();
    clear_crash();
    let (ale, db, wal) = db_with(12);
    // An in-memory sharded index mirrors every acknowledged write — the
    // usual cache-in-front-of-log shape. Tiny shards with piggyback
    // migration off keep an incremental resize live across the crash.
    let map: AleShardedMap<u64> = AleShardedMap::new(
        &ale,
        ShardedMapConfig::new(2)
            .with_buckets_per_shard(2)
            .with_capacity_per_shard(1 << 10)
            .with_version_stripes(2)
            .with_max_load_permille(600)
            .with_migrate_steps_per_op(0),
    );

    let mut acked = Vec::new();
    for k in 1..=24u64 {
        db.set(k, k + 300);
        map.insert(k, k + 300);
        acked.push(k);
    }
    // Advance the migration a little, but the crash must land *mid*-epoch.
    map.migrate_step(0);
    assert!(
        map.any_migration_in_progress(),
        "the load factor must have tripped a resize before the crash"
    );

    // The process dies on the 4th durable append from here: some writes
    // ack, one is killed after its record is durable, the map is torn
    // away mid-migration.
    install_crash(CrashPlan::new(CrashPoint::PreCommit, 4));
    let mut killed = None;
    for k in 25..=32u64 {
        match catch_unwind(AssertUnwindSafe(|| db.set(k, k + 300))) {
            Ok(_) => {
                map.insert(k, k + 300);
                acked.push(k);
            }
            Err(p) => {
                assert!(p.downcast_ref::<InjectedCrash>().is_some());
                if killed.is_none() {
                    killed = Some(k);
                }
            }
        }
    }
    assert!(crashed());
    assert_eq!(killed, Some(28));
    assert!(
        map.any_migration_in_progress(),
        "the crash must interrupt a live migration"
    );
    clear_crash();

    // Recovery sees only the log. The durability oracle's contract: every
    // acknowledged write present, the killed-but-durable write present,
    // nothing after the crash observable.
    let (rdb, rep) = fresh_recover(13, &wal);
    assert!(rep.gapless);
    assert_eq!(rep.truncated, 0);
    for &k in &acked {
        assert_eq!(rdb.get(k), Some(k + 300), "acked key {k} lost");
    }
    assert_eq!(rdb.get(28), Some(328), "durable pre-commit write lost");
    assert_eq!(rdb.get(29), None, "post-crash write must not be durable");
    assert_eq!(rdb.count(), acked.len() + 1);

    // Rebuild the sharded index from the recovered database: the dead
    // map's half-finished migration must leave no residue — the fresh map
    // reaches parity, its cursor invariant holds through its own resizes,
    // and draining them terminates.
    let rale = Ale::new(
        AleConfig::new(Platform::testbed()).with_seed(14),
        StaticPolicy::new(3, 8),
    );
    let rmap: AleShardedMap<u64> = AleShardedMap::new(
        &rale,
        ShardedMapConfig::new(2)
            .with_buckets_per_shard(2)
            .with_capacity_per_shard(1 << 10)
            .with_version_stripes(2)
            .with_max_load_permille(600)
            .with_migrate_steps_per_op(1),
    );
    for k in 1..=32u64 {
        if let Some(v) = rdb.get(k) {
            rmap.insert(k, v);
        }
    }
    for si in 0..rmap.shard_count() {
        let mut steps = 0;
        while rmap.migrate_step(si) {
            assert!(rmap.old_chains_empty_below_cursor(si));
            steps += 1;
            assert!(steps < 10_000, "rebuild migration never terminates");
        }
    }
    assert_eq!(rmap.len_slow(), rdb.count());
    let mut v = 0;
    for &k in &acked {
        assert!(rmap.get(k, &mut v), "rebuilt index lost acked key {k}");
        assert_eq!(v, k + 300);
    }
    assert!(rmap.versions_even());
}

#[test]
fn frozen_wal_rejects_posthumous_appends() {
    let _guard = serial();
    clear_crash();
    let (_ale, db, wal) = db_with(10);
    db.set(1, 1);
    install_crash(CrashPlan::new(CrashPoint::WalAppend, 1));
    assert!(catch_unwind(AssertUnwindSafe(|| db.set(2, 2))).is_err());
    let len_at_death = wal.len();
    // The process is dead: nothing may extend its log, even with the plan
    // exhausted.
    assert!(catch_unwind(AssertUnwindSafe(|| db.set(3, 3))).is_err());
    assert!(catch_unwind(AssertUnwindSafe(|| db.remove(1))).is_err());
    assert_eq!(wal.len(), len_at_death);
    clear_crash();
}

#[test]
fn lock_poison_heals_and_preserves_acked_data() {
    let _guard = serial();
    clear_crash();
    ale_core::init_panic_hook();
    let (_ale, db, _wal) = db_with(11);
    for k in 0..20u64 {
        db.set(k, k + 1000);
    }
    db.remove(7);

    // A panicking critical section elsewhere poisoned the external lock
    // and a slot lock. The next operation must heal (clear poison, rebuild
    // from the log) instead of wedging every client forever.
    db.inner().external_meta().poison();
    db.inner().slot_meta(3).poison();
    assert!(db.inner().external_meta().is_poisoned());

    assert_eq!(db.get(4), Some(1004), "reader must heal a poisoned db");
    assert!(!db.inner().external_meta().is_poisoned());
    assert!(!db.inner().slot_meta(3).is_poisoned());
    for k in 0..20u64 {
        let expect = (k != 7).then_some(k + 1000);
        assert_eq!(db.get(k), expect, "key {k} damaged by healing");
    }
    assert_eq!(db.count(), 19);
    assert!(db.versions_even());

    // Writers heal too.
    db.inner().external_meta().poison();
    db.set(7, 7777);
    assert_eq!(db.get(7), Some(7777));
    assert_eq!(db.count(), 20);
}
